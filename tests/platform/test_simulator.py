"""Unit tests for the discrete-event kernel and PE sequencers."""

import pytest

from repro.platform import (
    PESequencer,
    ProcessingElement,
    SimulationDeadlock,
    Simulator,
)


class StubTask:
    """Configurable task: guard flag, fixed duration, completion log."""

    def __init__(self, name, duration=5, gate=None):
        self.name = name
        self.duration = duration
        self.gate = gate  # None = always ready, else a mutable [bool]
        self.finishes = []

    def ready(self, now):
        return True if self.gate is None else self.gate[0]

    def start(self, now):
        return self.duration

    def finish(self, now):
        self.finishes.append(now)


class AsyncTask:
    """Event-completed task: finishes when an external event fires."""

    def __init__(self, name, sim, complete_at):
        self.name = name
        self.sim = sim
        self.complete_at = complete_at
        self.complete_async = None
        self.finishes = []

    def ready(self, now):
        return True

    def start(self, now):
        self.sim.at(self.complete_at, lambda: self.complete_async())
        return None

    def finish(self, now):
        self.finishes.append(now)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(10, lambda: log.append("b"))
        sim.at(5, lambda: log.append("a"))
        sim.at(10, lambda: log.append("c"))
        final = sim.run()
        assert log == ["a", "b", "c"]
        assert final == 10

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5, lambda: sim.at(3, lambda: None))
        with pytest.raises(ValueError, match="past"):
            sim.run()

    def test_max_cycles_guard(self):
        sim = Simulator()
        def reschedule():
            sim.after(10, reschedule)
        sim.at(0, reschedule)
        with pytest.raises(RuntimeError, match="max_cycles"):
            sim.run(max_cycles=100)


class TestPESequencer:
    def test_serial_execution_on_one_pe(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        tasks = [StubTask("t1", 5), StubTask("t2", 7)]
        seq = PESequencer(sim, pe, tasks, iterations=2)
        seq.begin()
        sim.run()
        assert tasks[0].finishes == [5, 17]
        assert tasks[1].finishes == [12, 24]
        assert seq.done
        assert seq.finish_times == [12, 24]
        assert pe.busy_cycles == 24
        assert pe.firings == 4

    def test_blocked_task_deadlocks_alone(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        gate = [False]
        seq = PESequencer(sim, pe, [StubTask("t", gate=gate)], iterations=1)
        seq.begin()
        with pytest.raises(SimulationDeadlock, match="blocked on task"):
            sim.run()

    def test_notify_unblocks(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        gate = [False]
        blocked = StubTask("blocked", duration=3, gate=gate)
        seq = PESequencer(sim, pe, [blocked], iterations=1)
        seq.begin()

        def open_gate():
            gate[0] = True
            sim.notify()

        sim.at(20, open_gate)
        sim.run()
        assert blocked.finishes == [23]
        assert pe.blocked_events >= 1

    def test_two_pes_run_concurrently(self):
        sim = Simulator()
        pe0, pe1 = ProcessingElement(0), ProcessingElement(1)
        t0, t1 = StubTask("t0", 10), StubTask("t1", 10)
        seq0 = PESequencer(sim, pe0, [t0], iterations=1)
        seq1 = PESequencer(sim, pe1, [t1], iterations=1)
        seq0.begin()
        seq1.begin()
        final = sim.run()
        assert final == 10  # parallel, not 20

    def test_async_completion(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        task = AsyncTask("rendezvous", sim, complete_at=42)
        seq = PESequencer(sim, pe, [task], iterations=1)
        seq.begin()
        sim.run()
        assert task.finishes == [42]
        assert pe.busy_cycles == 42  # blocked the PE the whole time

    def test_iterations_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PESequencer(sim, ProcessingElement(0), [], iterations=0)

    def test_utilization(self):
        pe = ProcessingElement(3)
        pe.record_execution(30)
        assert pe.utilization(60) == pytest.approx(0.5)
        assert pe.utilization(0) == 0.0
        assert pe.name == "PE3"
