"""Unit tests for the discrete-event kernel and PE sequencers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import (
    LostWakeupError,
    PESequencer,
    ProcessingElement,
    SimulationDeadlock,
    Simulator,
    Waitset,
)


class StubTask:
    """Configurable task: guard flag, fixed duration, completion log."""

    def __init__(self, name, duration=5, gate=None):
        self.name = name
        self.duration = duration
        self.gate = gate  # None = always ready, else a mutable [bool]
        self.finishes = []

    def ready(self, now):
        return True if self.gate is None else self.gate[0]

    def start(self, now):
        return self.duration

    def finish(self, now):
        self.finishes.append(now)


class AsyncTask:
    """Event-completed task: finishes when an external event fires."""

    def __init__(self, name, sim, complete_at):
        self.name = name
        self.sim = sim
        self.complete_at = complete_at
        self.complete_async = None
        self.finishes = []

    def ready(self, now):
        return True

    def start(self, now):
        self.sim.at(self.complete_at, lambda: self.complete_async())
        return None

    def finish(self, now):
        self.finishes.append(now)


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(10, lambda: log.append("b"))
        sim.at(5, lambda: log.append("a"))
        sim.at(10, lambda: log.append("c"))
        final = sim.run()
        assert log == ["a", "b", "c"]
        assert final == 10

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5, lambda: sim.at(3, lambda: None))
        with pytest.raises(ValueError, match="past"):
            sim.run()

    def test_max_cycles_guard(self):
        sim = Simulator()
        def reschedule():
            sim.after(10, reschedule)
        sim.at(0, reschedule)
        with pytest.raises(RuntimeError, match="max_cycles"):
            sim.run(max_cycles=100)


class TestPESequencer:
    def test_serial_execution_on_one_pe(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        tasks = [StubTask("t1", 5), StubTask("t2", 7)]
        seq = PESequencer(sim, pe, tasks, iterations=2)
        seq.begin()
        sim.run()
        assert tasks[0].finishes == [5, 17]
        assert tasks[1].finishes == [12, 24]
        assert seq.done
        assert seq.finish_times == [12, 24]
        assert pe.busy_cycles == 24
        assert pe.firings == 4

    def test_blocked_task_deadlocks_alone(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        gate = [False]
        seq = PESequencer(sim, pe, [StubTask("t", gate=gate)], iterations=1)
        seq.begin()
        with pytest.raises(SimulationDeadlock) as excinfo:
            sim.run()
        # the message names the PE and the parked task
        assert "PE0" in str(excinfo.value)
        assert "blocked on task 't'" in str(excinfo.value)

    def test_deadlock_message_includes_task_reason(self):
        """Tasks exposing ``blocked_reason`` get it appended — the
        mechanism the SPI/MPI tasks use to name the starved channel."""

        class ChannelTask(StubTask):
            def blocked_reason(self, now):
                return "waiting for a message on channel 'A.o->B.i'"

        sim = Simulator()
        pe = ProcessingElement(1)
        task = ChannelTask("recv", gate=[False])
        seq = PESequencer(sim, pe, [task], iterations=1)
        seq.begin()
        with pytest.raises(SimulationDeadlock) as excinfo:
            sim.run()
        message = str(excinfo.value)
        assert "PE1" in message
        assert "waiting for a message on channel 'A.o->B.i'" in message

    def test_deadlock_message_tolerates_broken_reason(self):
        """A faulty ``blocked_reason`` must not mask the deadlock."""

        class BadReasonTask(StubTask):
            def blocked_reason(self, now):
                raise RuntimeError("diagnosis failed")

        sim = Simulator()
        pe = ProcessingElement(0)
        seq = PESequencer(
            sim, pe, [BadReasonTask("t", gate=[False])], iterations=1
        )
        seq.begin()
        with pytest.raises(SimulationDeadlock, match="blocked on task"):
            sim.run()

    def test_spi_deadlock_names_pe_and_channel(self):
        """End to end: an SPI receiver whose producer never sends tokens
        deadlocks with a message naming its PE and the starved channel."""
        from repro.dataflow import DataflowGraph
        from repro.mapping import Partition
        from repro.spi import SpiSystem

        graph = DataflowGraph("starved")

        def silent(k, inputs):
            return {"o": []}  # violates its declared rate: B starves

        def sink(k, inputs):
            return {}

        a = graph.actor("A", kernel=silent, cycles=5)
        b = graph.actor("B", kernel=sink, cycles=5)
        a.add_output("o")
        b.add_input("i")
        graph.connect((a, "o"), (b, "i"))
        partition = Partition.manual(graph, {"A": 0, "B": 1})
        system = SpiSystem.compile(graph, partition)
        with pytest.raises(SimulationDeadlock) as excinfo:
            system.run(iterations=2)
        message = str(excinfo.value)
        assert "PE1" in message
        assert "A.o->B.i" in message  # the channel it is blocked on

    def test_notify_unblocks(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        gate = [False]
        blocked = StubTask("blocked", duration=3, gate=gate)
        seq = PESequencer(sim, pe, [blocked], iterations=1)
        seq.begin()

        def open_gate():
            gate[0] = True
            sim.notify()

        sim.at(20, open_gate)
        sim.run()
        assert blocked.finishes == [23]
        assert pe.blocked_events >= 1

    def test_two_pes_run_concurrently(self):
        sim = Simulator()
        pe0, pe1 = ProcessingElement(0), ProcessingElement(1)
        t0, t1 = StubTask("t0", 10), StubTask("t1", 10)
        seq0 = PESequencer(sim, pe0, [t0], iterations=1)
        seq1 = PESequencer(sim, pe1, [t1], iterations=1)
        seq0.begin()
        seq1.begin()
        final = sim.run()
        assert final == 10  # parallel, not 20

    def test_async_completion(self):
        sim = Simulator()
        pe = ProcessingElement(0)
        task = AsyncTask("rendezvous", sim, complete_at=42)
        seq = PESequencer(sim, pe, [task], iterations=1)
        seq.begin()
        sim.run()
        assert task.finishes == [42]
        assert pe.busy_cycles == 42  # blocked the PE the whole time

    def test_iterations_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PESequencer(sim, ProcessingElement(0), [], iterations=0)

    def test_utilization(self):
        pe = ProcessingElement(3)
        pe.record_execution(30)
        assert pe.utilization(60) == pytest.approx(0.5)
        assert pe.utilization(0) == 0.0
        assert pe.name == "PE3"


class Resource:
    """Counting resource with a waitset — the targeted-wakeup testbed."""

    def __init__(self, sim, name="r"):
        self.sim = sim
        self.tokens = 0
        self.waitset = Waitset(name)

    def deposit(self, wake=True):
        self.tokens += 1
        if wake:
            self.waitset.wake()
        self.sim.notify()


class WaitingTask(StubTask):
    """Consumes one token per firing; declares its waitset via wait_on."""

    def __init__(self, name, resource, duration=2):
        super().__init__(name, duration)
        self.resource = resource

    def ready(self, now):
        return self.resource.tokens > 0

    def wait_on(self, now):
        return [self.resource.waitset]

    def start(self, now):
        self.resource.tokens -= 1
        return self.duration


class BroadcastTask(WaitingTask):
    """Same consumer without the wait_on hook: broadcast fallback."""

    wait_on = None

    def __getattribute__(self, name):
        if name == "wait_on":
            raise AttributeError("wait_on")
        return object.__getattribute__(self, name)


class TestWaitsets:
    def _consumer(self, sim, resource, iterations=1, cls=WaitingTask, idx=0):
        task = cls(f"consume{idx}", resource)
        seq = PESequencer(
            sim, ProcessingElement(idx), [task], iterations=iterations
        )
        seq.begin()
        return task, seq

    def test_wakeup_discipline_validated(self):
        with pytest.raises(ValueError, match="wakeup"):
            Simulator(wakeups="bogus")

    def test_targeted_wakeup_counters(self):
        sim = Simulator()
        resource = Resource(sim)
        task, _ = self._consumer(sim, resource)
        sim.at(10, resource.deposit)
        sim.run()
        assert task.finishes == [12]
        assert sim.parks == 1
        assert sim.targeted_wakeups == 1
        assert sim.broadcast_wakeups == 0
        assert sim.spurious_wakeups == 0
        assert sim.total_wakeups == 1
        assert sim.retry_rounds == 0
        assert resource.waitset.wakes == 1

    def test_broadcast_fallback_for_plain_tasks(self):
        sim = Simulator()
        resource = Resource(sim)
        task, _ = self._consumer(sim, resource, cls=BroadcastTask)
        sim.at(10, resource.deposit)
        sim.run()
        assert task.finishes == [12]
        assert sim.targeted_wakeups == 0
        assert sim.broadcast_wakeups >= 1
        assert sim.retry_rounds >= 1

    def test_forced_broadcast_discipline(self):
        """wakeups="broadcast" parks even wait_on tasks on the retry
        sweep — the pre-waitset kernel, kept for A/B benchmarking."""
        sim = Simulator(wakeups="broadcast")
        resource = Resource(sim)
        task, _ = self._consumer(sim, resource)
        sim.at(10, resource.deposit)
        sim.run()
        assert task.finishes == [12]
        assert sim.targeted_wakeups == 0
        assert sim.broadcast_wakeups >= 1

    def test_spurious_wakeup_counted(self):
        """Two consumers on one waitset, one token: the loser re-parks
        and the kernel books one spurious wakeup."""
        sim = Simulator()
        resource = Resource(sim)
        t0, _ = self._consumer(sim, resource, idx=0)
        t1, _ = self._consumer(sim, resource, idx=1)
        sim.at(5, resource.deposit)
        sim.at(20, resource.deposit)
        sim.run()
        assert t0.finishes and t1.finishes
        assert sim.spurious_wakeups == 1
        assert sim.targeted_wakeups == 3  # 2 at t=5 (1 spurious) + 1 at t=20

    def test_stale_subscriptions_invalidated_by_epoch(self):
        """A sequencer re-parking leaves stale entries in waitsets it no
        longer waits on; epoch comparison must discard them."""

        class TwoResourceTask(StubTask):
            def __init__(self, name, a, b):
                super().__init__(name, duration=1)
                self.a, self.b = a, b

            def ready(self, now):
                return self.a.tokens > 0 and self.b.tokens > 0

            def wait_on(self, now):
                waitsets = []
                if self.a.tokens <= 0:
                    waitsets.append(self.a.waitset)
                if self.b.tokens <= 0:
                    waitsets.append(self.b.waitset)
                return waitsets

            def start(self, now):
                self.a.tokens -= 1
                self.b.tokens -= 1
                return self.duration

        sim = Simulator()
        a, b = Resource(sim, "a"), Resource(sim, "b")
        task = TwoResourceTask("t", a, b)
        seq = PESequencer(sim, ProcessingElement(0), [task], iterations=1)
        seq.begin()
        sim.at(5, a.deposit)   # wakes, guard still fails (b empty)
        sim.at(10, b.deposit)  # wakes the *new* subscription only
        sim.run()
        assert task.finishes == [11]
        assert sim.spurious_wakeups == 1
        assert sim.targeted_wakeups == 2

    def test_park_is_idempotent(self):
        sim = Simulator()
        seq = PESequencer(
            sim, ProcessingElement(0), [StubTask("t")], iterations=1
        )
        sim.park(seq)
        sim.park(seq)
        assert sim.parks == 1
        assert sim._parked.count(seq) == 1

    def test_lost_wakeup_detected_at_deadlock(self):
        """A resource mutated without wake(): the drained heap finds the
        parked task ready and reports a kernel bug, not an app deadlock."""
        sim = Simulator()
        resource = Resource(sim)
        self._consumer(sim, resource)

        def silent_deposit():
            resource.tokens += 1  # no wake, no notify

        sim.at(5, silent_deposit)
        with pytest.raises(LostWakeupError, match="lost wakeup"):
            sim.run()

    def test_lost_wakeup_audit_mode(self):
        """check_lost_wakeups=True catches the lost wakeup at the next
        wake round instead of waiting for the deadlock."""
        sim = Simulator(check_lost_wakeups=True)
        starved, healthy = Resource(sim, "starved"), Resource(sim, "ok")
        self._consumer(sim, starved, idx=0)
        self._consumer(sim, healthy, idx=1)

        def mixed():
            starved.tokens += 1       # forgotten wake
            healthy.deposit()         # proper wake -> drives a wake round

        sim.at(5, mixed)
        with pytest.raises(LostWakeupError, match="lost wakeup"):
            sim.run()

    def test_deadlock_still_reported_under_targeted(self):
        sim = Simulator()
        resource = Resource(sim)  # never deposited
        self._consumer(sim, resource)
        with pytest.raises(SimulationDeadlock, match="blocked on task"):
            sim.run()


class TestProcessingElementReset:
    def test_reset_clears_all_statistics(self):
        pe = ProcessingElement(2)
        pe.record_execution(30)
        pe.record_block()
        pe.record_blocked_interval("recv", 12)
        pe.reset()
        assert pe.busy_cycles == 0
        assert pe.firings == 0
        assert pe.blocked_events == 0
        assert pe.blocked_cycles == 0
        assert pe.blocked_by_task == {}
        # identity survives, accounting restarts cleanly
        assert pe.index == 2 and pe.name == "PE2"
        pe.record_blocked_interval("send", 3)
        assert pe.blocked_by_task == {"send": 3}


class TestNoLostWakeupProperty:
    """Property: under random deposit/consume interleavings the targeted
    kernel (with its lost-wakeup audit armed) never strands a sequencer,
    and delivers the exact schedule of the broadcast kernel."""

    @staticmethod
    def _build(wakeups, plan, check=False):
        sim = Simulator(wakeups=wakeups, check_lost_wakeups=check)
        tasks = []
        for idx, (targeted, duration, deposits) in enumerate(plan):
            resource = Resource(sim, f"r{idx}")
            cls = WaitingTask if targeted else BroadcastTask
            task = cls(f"c{idx}", resource, duration=duration)
            seq = PESequencer(
                sim,
                ProcessingElement(idx),
                [task],
                iterations=len(deposits),
            )
            seq.begin()
            tasks.append((task, seq))
            for t in deposits:
                sim.at(t, resource.deposit)
        return sim, tasks

    @given(
        plan=st.lists(
            st.tuples(
                st.booleans(),                        # wait_on hook?
                st.integers(0, 4),                    # task duration
                st.lists(                             # deposit times
                    st.integers(0, 40), min_size=1, max_size=5
                ),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_interleavings(self, plan):
        sim, tasks = self._build("targeted", plan, check=True)
        final = sim.run()
        for task, seq in tasks:
            assert seq.done
            assert len(task.finishes) == seq.iterations
        assert sim.total_wakeups == sim.targeted_wakeups + sim.broadcast_wakeups
        assert sim.spurious_wakeups <= sim.total_wakeups

        # the broadcast kernel must produce the identical schedule
        ref_sim, ref_tasks = self._build("broadcast", plan)
        ref_final = ref_sim.run()
        assert ref_final == final
        for (task, _), (ref_task, _) in zip(tasks, ref_tasks):
            assert task.finishes == ref_task.finishes
