"""Unit tests for buffer memories."""

import pytest

from repro.platform import (
    BufferMemory,
    BufferOverflowError,
    BufferUnderflowError,
)


class TestBoundedBuffer:
    def test_write_read_cycle(self):
        buffer = BufferMemory("b", capacity_bytes=10)
        buffer.write(6)
        assert buffer.occupancy_bytes == 6
        buffer.read(4)
        assert buffer.occupancy_bytes == 2
        assert buffer.free_bytes() == 8

    def test_overflow_raises(self):
        buffer = BufferMemory("b", capacity_bytes=10)
        buffer.write(8)
        with pytest.raises(BufferOverflowError, match="exceeds capacity"):
            buffer.write(3)

    def test_underflow_raises(self):
        buffer = BufferMemory("b", capacity_bytes=10)
        buffer.write(2)
        with pytest.raises(BufferUnderflowError):
            buffer.read(3)

    def test_high_water_tracking(self):
        buffer = BufferMemory("b", capacity_bytes=100)
        buffer.write(30)
        buffer.write(40)
        buffer.read(50)
        buffer.write(10)
        assert buffer.high_water_bytes == 70
        assert buffer.total_written_bytes == 80

    def test_can_accept(self):
        buffer = BufferMemory("b", capacity_bytes=4)
        assert buffer.can_accept(4)
        buffer.write(1)
        assert not buffer.can_accept(4)

    def test_reset(self):
        buffer = BufferMemory("b", capacity_bytes=4)
        buffer.write(3)
        buffer.reset()
        assert buffer.occupancy_bytes == 0
        assert buffer.high_water_bytes == 0


class TestUnboundedBuffer:
    def test_never_overflows(self):
        buffer = BufferMemory("u")
        buffer.write(10**9)
        assert buffer.free_bytes() is None
        assert not buffer.is_bounded

    def test_still_tracks_high_water(self):
        buffer = BufferMemory("u")
        buffer.write(100)
        buffer.read(60)
        assert buffer.high_water_bytes == 100


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferMemory("b", capacity_bytes=-1)

    def test_negative_write_rejected(self):
        with pytest.raises(ValueError):
            BufferMemory("b", capacity_bytes=4).write(-1)

    def test_negative_read_rejected(self):
        with pytest.raises(ValueError):
            BufferMemory("b", capacity_bytes=4).read(-1)
