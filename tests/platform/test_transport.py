"""Unit tests for the data transports (p2p, shared bus, ordered bus)."""

import pytest

from repro.platform import Interconnect, LinkSpec, Simulator
from repro.platform.transport import (
    OrderedBusTransport,
    PointToPointTransport,
    SharedBusTransport,
)


def collect(sim):
    arrivals = []

    def deliver_factory(tag):
        return lambda: arrivals.append((tag, sim.now))

    return arrivals, deliver_factory


class TestPointToPoint:
    def test_distinct_pairs_parallel(self):
        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(4, 4, 1)))
        arrivals, deliver = collect(sim)
        transport.send("a", 0, 1, 4, 0, deliver("a"))
        transport.send("b", 2, 3, 4, 0, deliver("b"))
        sim.run()
        assert arrivals == [("a", 5), ("b", 5)]  # concurrent

    def test_same_pair_serializes(self):
        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(4, 4, 1)))
        arrivals, deliver = collect(sim)
        transport.send("a", 0, 1, 4, 0, deliver("a"))
        transport.send("b", 0, 1, 4, 0, deliver("b"))
        sim.run()
        assert arrivals == [("a", 5), ("b", 10)]


class TestSharedBus:
    def test_everything_serializes_with_arbitration(self):
        sim = Simulator()
        bus = SharedBusTransport(sim, LinkSpec(4, 4, 1), arbitration_cycles=2)
        arrivals, deliver = collect(sim)
        bus.send("a", 0, 1, 4, 0, deliver("a"))
        bus.send("b", 2, 3, 4, 0, deliver("b"))  # different PEs, same bus
        sim.run()
        assert arrivals == [("a", 7), ("b", 14)]
        assert bus.messages == 2

    def test_idle_bus_starts_immediately(self):
        sim = Simulator()
        bus = SharedBusTransport(sim, LinkSpec(0, 4, 1), arbitration_cycles=0)
        arrivals, deliver = collect(sim)
        sim.at(50, lambda: bus.send("x", 0, 1, 4, 50, deliver("x")))
        sim.run()
        assert arrivals == [("x", 51)]

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedBusTransport(Simulator(), arbitration_cycles=-1)


class TestOrderedBus:
    def test_in_order_requests_flow(self):
        sim = Simulator()
        bus = OrderedBusTransport(sim, order=["a", "b"], spec=LinkSpec(0, 4, 1))
        arrivals, deliver = collect(sim)
        bus.send("a", 0, 1, 4, 0, deliver("a"))
        bus.send("b", 0, 1, 4, 0, deliver("b"))
        sim.run()
        assert arrivals == [("a", 1), ("b", 2)]

    def test_out_of_turn_request_waits(self):
        sim = Simulator()
        bus = OrderedBusTransport(sim, order=["a", "b"], spec=LinkSpec(0, 4, 1))
        arrivals, deliver = collect(sim)
        bus.send("b", 0, 1, 4, 0, deliver("b"))  # b must wait for a's slot
        sim.run()
        assert arrivals == []  # still parked
        bus.send("a", 0, 1, 4, sim.now, deliver("a"))
        sim.run()
        assert [tag for tag, _ in arrivals] == ["a", "b"]

    def test_cyclic_order(self):
        sim = Simulator()
        bus = OrderedBusTransport(sim, order=["a"], spec=LinkSpec(0, 4, 1))
        arrivals, deliver = collect(sim)
        for k in range(3):
            bus.send("a", 0, 1, 4, 0, deliver(f"a{k}"))
        sim.run()
        assert [t for _, t in arrivals] == [1, 2, 3]

    def test_unknown_key_rejected(self):
        bus = OrderedBusTransport(Simulator(), order=["a"])
        with pytest.raises(ValueError, match="transaction order"):
            bus.send("ghost", 0, 1, 4, 0, lambda: None)

    def test_empty_order_rejected(self):
        with pytest.raises(ValueError):
            OrderedBusTransport(Simulator(), order=[])


class TestInstrumentation:
    def test_p2p_per_channel_traffic(self):
        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(4, 4, 1)))
        arrivals, deliver = collect(sim)
        transport.send("a", 0, 1, 4, 0, deliver("a1"))
        transport.send("a", 0, 1, 4, 0, deliver("a2"))  # queues behind a1
        transport.send("b", 2, 3, 4, 0, deliver("b"))
        sim.run()
        a = transport.per_channel["a"]
        assert a.messages == 2
        assert a.bytes == 8
        assert a.queueing_cycles == 5  # second message waited for the link
        assert transport.per_channel["b"].queueing_cycles == 0

    def test_shared_bus_contention_recorded(self):
        sim = Simulator()
        bus = SharedBusTransport(sim, LinkSpec(4, 4, 1), arbitration_cycles=2)
        arrivals, deliver = collect(sim)
        bus.send("a", 0, 1, 4, 0, deliver("a"))
        bus.send("b", 2, 3, 4, 0, deliver("b"))
        sim.run()
        assert bus.per_channel["a"].contention_cycles == 0
        assert bus.per_channel["b"].contention_cycles == 7  # a's occupancy

    def test_ordered_bus_slot_wait_is_queueing_not_contention(self):
        sim = Simulator()
        bus = OrderedBusTransport(sim, order=["a", "b"], spec=LinkSpec(0, 4, 1))
        arrivals, deliver = collect(sim)
        bus.send("b", 0, 1, 4, 0, deliver("b"))  # out of turn: waits for a
        sim.at(10, lambda: bus.send("a", 0, 1, 4, 10, deliver("a")))
        sim.run()
        b = bus.per_channel["b"]
        assert b.queueing_cycles >= 10  # waited for a's slot
        assert b.queueing_cycles > b.contention_cycles

    def test_observer_receives_message_records(self):
        from repro.observability import ObservabilityHub

        hub = ObservabilityHub()
        sim = Simulator()
        transport = PointToPointTransport(
            sim, Interconnect(LinkSpec(4, 4, 1)), observer=hub
        )
        transport.send("a", 0, 1, 4, 0, lambda: None, kind="data")
        sim.run()
        assert len(hub.messages) == 1
        record = hub.messages[0]
        assert record.kind == "data"
        assert record.arrived > record.started >= record.requested
        assert hub.byte_split() == {"data": 4}


class TestRuntimeIntegration:
    def build(self, transport):
        from repro.dataflow import DataflowGraph
        from repro.mapping import Partition
        from repro.spi import SpiConfig, SpiSystem

        graph = DataflowGraph("t")
        a = graph.actor("A", cycles=10)
        b = graph.actor("B", cycles=20)
        c = graph.actor("C", cycles=5)
        a.add_output("o")
        b.add_input("i")
        b.add_output("o")
        c.add_input("i")
        graph.connect((a, "o"), (b, "i"))
        graph.connect((b, "o"), (c, "i"))
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        return SpiSystem.compile(
            graph, partition, SpiConfig(transport=transport)
        )

    @pytest.mark.parametrize("transport", ["p2p", "shared_bus", "ordered_bus"])
    def test_all_transports_complete(self, transport):
        result = self.build(transport).run(iterations=10)
        assert result.iterations == 10
        assert result.data_messages == 20

    def test_shared_bus_not_faster_than_p2p(self):
        p2p = self.build("p2p").run(iterations=20)
        bus = self.build("shared_bus").run(iterations=20)
        assert bus.execution_time_us >= p2p.execution_time_us

    def test_transaction_order_follows_pass(self):
        system = self.build("ordered_bus")
        order = system.transaction_order()
        assert len(order) == 2
        assert order[0].startswith("A.o->B.i")

    def test_unknown_transport_rejected(self):
        from repro.spi import SpiConfig

        with pytest.raises(ValueError):
            SpiConfig(transport="carrier_pigeon")


class TestFastPath:
    """The p2p uncontended fast path: zero-latency idle links deliver
    inline instead of taking a heap round trip."""

    def test_zero_latency_link_delivers_inline(self):
        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(0, 4, 0)))
        log = []
        transport.send("a", 0, 1, 4, 0, lambda: log.append(sim.now))
        # delivered synchronously inside send(): no sim.run() needed
        assert log == [0]
        assert transport.fast_path_deliveries == 1
        assert sim.events_processed == 0

    def test_busy_link_takes_slow_path(self):
        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(0, 4, 1)))
        log = []
        transport.send("a", 0, 1, 8, 0, lambda: log.append(("first", sim.now)))
        transport.send("a", 0, 1, 8, 0, lambda: log.append(("second", sim.now)))
        sim.run()
        # per-word cycles make arrival > now: both queue through the heap
        assert transport.fast_path_deliveries == 0
        assert log == [("first", 2), ("second", 4)]

    def test_nonzero_setup_takes_slow_path(self):
        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(4, 4, 1)))
        log = []
        transport.send("a", 0, 1, 4, 0, lambda: log.append(sim.now))
        assert log == []  # not yet delivered
        sim.run()
        assert log == [5]
        assert transport.fast_path_deliveries == 0

    def test_fast_path_wakes_waitset(self):
        from repro.platform import PESequencer, ProcessingElement

        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(0, 4, 0)))
        arrived = []

        class RecvTask:
            name = "recv"

            def ready(self, now):
                return bool(arrived)

            def wait_on(self, now):
                return [transport.waitset]

            def start(self, now):
                arrived.pop()
                return 1

            def finish(self, now):
                pass

        seq = PESequencer(
            sim, ProcessingElement(0), [RecvTask()], iterations=1
        )
        seq.begin()
        sim.at(7, lambda: transport.send(
            "a", 1, 0, 4, 7, lambda: arrived.append(1)
        ))
        final = sim.run()
        assert final == 8  # parked consumer woken by the inline delivery
        assert transport.fast_path_deliveries == 1
        assert sim.targeted_wakeups == 1

    def test_stats_still_recorded_on_fast_path(self):
        sim = Simulator()
        transport = PointToPointTransport(sim, Interconnect(LinkSpec(0, 4, 0)))
        transport.send("a", 0, 1, 16, 0, lambda: None)
        assert transport.messages == 1
        assert transport.bytes == 16
        assert transport.per_channel["a"].messages == 1
