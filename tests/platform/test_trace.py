"""Unit tests for execution-trace recording and rendering."""

import pytest

from repro.dataflow import DataflowGraph
from repro.mapping import Partition
from repro.platform.trace import PEExclusivityError, TraceEvent, TraceRecorder
from repro.spi import SpiSystem


class TestTraceEvent:
    def test_duration(self):
        event = TraceEvent(pe=0, task="t", start=5, end=12, iteration=0)
        assert event.duration == 7

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(pe=0, task="t", start=5, end=4, iteration=0)


class TestTraceRecorder:
    def recorder(self):
        trace = TraceRecorder()
        trace.record(0, "a", 0, 10, 0)
        trace.record(1, "b", 5, 20, 0)
        trace.record(0, "a", 10, 25, 1)
        return trace

    def test_queries(self):
        trace = self.recorder()
        assert len(trace) == 3
        assert len(trace.events_on(0)) == 2
        assert len(trace.events_of("b")) == 1
        assert trace.makespan() == 25

    def test_pe_busy_cycles(self):
        busy = self.recorder().pe_busy_cycles()
        assert busy == {0: 25, 1: 15}

    def test_task_statistics(self):
        stats = self.recorder().task_statistics()
        assert stats["a"]["count"] == 2
        assert stats["a"]["total"] == 25
        assert stats["a"]["mean"] == 12.5

    def test_exclusivity_check_passes_on_serial_pe(self):
        self.recorder().validate_pe_exclusivity()

    def test_exclusivity_check_catches_overlap(self):
        trace = TraceRecorder()
        trace.record(0, "a", 0, 10, 0)
        trace.record(0, "b", 5, 8, 0)
        with pytest.raises(PEExclusivityError, match="overlaps"):
            trace.validate_pe_exclusivity()

    def test_exclusivity_error_is_not_an_assertion(self):
        # Must survive `python -O`: a real exception type, not `assert`.
        assert not issubclass(PEExclusivityError, AssertionError)

    def test_csv(self):
        csv = self.recorder().to_csv()
        lines = csv.splitlines()
        assert lines[0] == "pe,task,iteration,start,end,duration"
        assert len(lines) == 4

    def test_gantt_renders(self):
        trace = TraceRecorder()
        trace.record(0, "fft", 0, 10, 0)
        trace.record(1, "lu", 5, 20, 0)
        text = trace.gantt(width=25)
        assert "PE0" in text and "PE1" in text
        assert "a=fft" in text  # legend: symbol=task
        assert "b=lu" in text
        assert "." in text  # idle time visible

    def test_empty_gantt(self):
        assert "(empty trace)" in TraceRecorder().gantt()

    def test_gantt_header_aligns_with_bars(self):
        trace = TraceRecorder()
        trace.record(0, "t", 0, 10, 0)
        for width in (8, 25, 72):
            header, row = trace.gantt(width=width).splitlines()[:2]
            bar_open = row.index("|")
            # "0" sits under the first cell of the bar
            assert header[bar_open + 1] == "0"
            assert header.endswith("cycles")

    def test_gantt_short_horizon_does_not_collapse_header(self):
        # horizon (3) far shorter than the width the old math assumed
        trace = TraceRecorder()
        trace.record(0, "t", 0, 3, 0)
        text = trace.gantt(width=72)
        header = text.splitlines()[0]
        assert "3 cycles" in header


class TestRuntimeIntegration:
    def make_system(self):
        graph = DataflowGraph("traced")
        a = graph.actor("A", cycles=10)
        b = graph.actor("B", cycles=20)
        a.add_output("o")
        b.add_input("i")
        graph.connect((a, "o"), (b, "i"))
        partition = Partition.manual(graph, {"A": 0, "B": 1})
        return SpiSystem.compile(graph, partition)

    def test_run_without_trace_by_default(self):
        result = self.make_system().run(iterations=2)
        assert result.trace is None

    def test_run_with_trace(self):
        result = self.make_system().run(iterations=3, trace=True)
        trace = result.trace
        assert trace is not None
        # every computation task appears once per iteration
        assert len(trace.events_of("fire:A")) == 3
        assert len(trace.events_of("fire:B")) == 3
        trace.validate_pe_exclusivity()
        assert trace.makespan() == result.cycles

    def test_trace_times_match_cycle_models(self):
        result = self.make_system().run(iterations=2, trace=True)
        for event in result.trace.events_of("fire:B"):
            assert event.duration == 20
