"""Unit tests for the heterogeneous PE class cost model.

The contract under test: a ``gpp`` is the *identity* model (so mapping
onto gpp PEs stays bit-identical to the homogeneous platform), while an
``accelerator`` pays ``dispatch_cycles`` once per dispatch and then
``ceil(native * cycles_per_element)`` per firing — the amortization
batching exploits.
"""

import pytest

from repro.platform import GPP, PEClass, ProcessingElement


class TestPEClass:
    def test_gpp_is_identity_model(self):
        assert not GPP.is_accelerator
        assert GPP.firing_cycles(10) == 10
        assert GPP.batch_cycles([10, 20, 30]) == 60
        # batching never saves cycles on a gpp (no launch overhead)
        assert GPP.dispatch_cycles_saved(8) == 0

    def test_gpp_rejects_accelerator_parameters(self):
        # the gpp no-op rule is load-bearing for bit-identity: a "gpp"
        # with dispatch overhead would silently change every makespan
        with pytest.raises(ValueError, match="gpp"):
            PEClass(dispatch_cycles=5)
        with pytest.raises(ValueError, match="gpp"):
            PEClass(cycles_per_element=0.5)

    def test_kind_validation(self):
        with pytest.raises(ValueError, match="unknown PE class kind"):
            PEClass(kind="dsp")

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="dispatch_cycles"):
            PEClass(kind="accelerator", dispatch_cycles=-1)
        with pytest.raises(ValueError, match="cycles_per_element"):
            PEClass(kind="accelerator", cycles_per_element=0)
        with pytest.raises(ValueError, match="resource_cost"):
            PEClass(kind="accelerator", resource_cost=0)

    def test_accelerator_firing_cycles_ceil(self):
        accel = PEClass(
            kind="accelerator", dispatch_cycles=10, cycles_per_element=0.3
        )
        assert accel.firing_cycles(10) == 3  # ceil(3.0)
        assert accel.firing_cycles(1) == 1  # ceil(0.3): never free
        assert accel.firing_cycles(0) == 0
        with pytest.raises(ValueError, match="native cycles"):
            accel.firing_cycles(-1)

    def test_batch_cycles_charges_dispatch_once(self):
        accel = PEClass(
            kind="accelerator", dispatch_cycles=10, cycles_per_element=0.3
        )
        # 10 (one dispatch) + 3 * ceil(10 * 0.3)
        assert accel.batch_cycles([10, 10, 10]) == 19
        assert accel.batch_cycles([10]) == 13
        # an empty dispatch is never issued, so it costs nothing
        assert accel.batch_cycles([]) == 0

    def test_dispatch_cycles_saved(self):
        accel = PEClass(
            kind="accelerator", dispatch_cycles=10, cycles_per_element=0.5
        )
        assert accel.dispatch_cycles_saved(1) == 0
        assert accel.dispatch_cycles_saved(4) == 30
        with pytest.raises(ValueError, match="batch"):
            accel.dispatch_cycles_saved(0)


class TestProcessingElementBatchAccounting:
    def test_batched_dispatch_keeps_firings_logical(self):
        pe = ProcessingElement(index=1)
        # the sequencer records one firing per task *execution*; the
        # batched-dispatch hook must add the burst's remaining B-1 so
        # ``firings`` stays the logical invocation count
        pe.record_execution(40)
        pe.record_batched_dispatch(firings=4, cycles_saved=30)
        assert pe.firings == 4
        assert pe.batched_firings == 4
        assert pe.batch_dispatches == 1
        assert pe.amortized_dispatch_cycles_saved == 30

    def test_batched_dispatch_validation(self):
        pe = ProcessingElement(index=0)
        with pytest.raises(ValueError, match=">= 2 firings"):
            pe.record_batched_dispatch(firings=1, cycles_saved=0)
        with pytest.raises(ValueError, match="cycles_saved"):
            pe.record_batched_dispatch(firings=2, cycles_saved=-1)

    def test_reset_clears_batch_counters(self):
        pe = ProcessingElement(index=0)
        pe.record_execution(10)
        pe.record_batched_dispatch(firings=3, cycles_saved=20)
        pe.reset()
        assert pe.firings == 0
        assert pe.batched_firings == 0
        assert pe.batch_dispatches == 0
        assert pe.amortized_dispatch_cycles_saved == 0
