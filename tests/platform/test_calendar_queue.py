"""Calendar queue: heap-identical ordering, rotation edge cases, A/B.

``Simulator(queue="calendar")`` swaps the binary heap for Brown's
calendar queue; the swap is only legal because the total order —
``(time, sequence number)`` — is exactly the heap's.  These tests pin
the ordering contract directly, exercise the bucket-rotation edge
cases (simultaneous events, empty buckets, sparse far-future jumps,
grow/shrink resizes), and A/B a contended synthetic graph plus a full
SPI run under both queues.
"""

import heapq
import random

import pytest

from repro.platform import (
    CalendarQueue,
    PESequencer,
    ProcessingElement,
    Simulator,
    Waitset,
)
from repro.spi import SpiSystem


def _drain(queue):
    out = []
    while len(queue):
        out.append(queue.pop()[:2])
    return out


def test_simultaneous_events_preserve_heap_order():
    """Same timestamp: the sequence number decides, exactly as the
    heap's (time, seq) tuples do — scheduling order is FIFO."""
    queue = CalendarQueue()
    order = [3, 0, 4, 1, 2]
    for seq in order:
        queue.push(7, seq, lambda: None)
    assert _drain(queue) == [(7, 0), (7, 1), (7, 2), (7, 3), (7, 4)]


def test_pop_matches_heap_on_random_schedule():
    rng = random.Random(11)
    queue = CalendarQueue(bucket_width=4, min_buckets=4)
    heap = []
    seq = 0
    popped = []
    now = 0
    for _ in range(2000):
        if heap and rng.random() < 0.45:
            entry = queue.pop()
            assert entry[:2] == heapq.heappop(heap)[:2]
            now = entry[0]
            popped.append(entry[:2])
        else:
            # never in the past: the simulator's monotone-time contract
            time = now + rng.randrange(0, 70)
            queue.push(time, seq, lambda: None)
            heapq.heappush(heap, (time, seq, None))
            seq += 1
    while heap:
        assert queue.pop()[:2] == heapq.heappop(heap)[:2]
    assert popped == sorted(popped)
    assert len(queue) == 0


def test_empty_bucket_rotation_and_sparse_jump():
    """A far-future event beyond one full bucket rotation must still
    pop (the sparse fallback jumps to the global minimum instead of
    spinning through empty days)."""
    queue = CalendarQueue(bucket_width=16, min_buckets=16)
    # one rotation covers 16*16 = 256 cycles; this event is far past it
    queue.push(100_000, 0, lambda: None)
    assert queue.pop()[:2] == (100_000, 0)
    # floor advanced: later pushes land relative to the new day
    queue.push(100_001, 1, lambda: None)
    queue.push(100_500, 2, lambda: None)
    assert _drain(queue) == [(100_001, 1), (100_500, 2)]


def test_wraparound_does_not_pop_future_event_early():
    """Two events whose times collide in the same bucket modulo the
    rotation: the day-window check must skip the far one on the first
    rotation rather than popping it out of order."""
    queue = CalendarQueue(bucket_width=16, min_buckets=4)
    # rotation = 4 buckets * 16 = 64 cycles; 2 and 66 share bucket 0
    queue.push(66, 0, lambda: None)
    queue.push(2, 1, lambda: None)
    assert _drain(queue) == [(2, 1), (66, 0)]


def test_resize_grow_and_shrink_preserve_order():
    queue = CalendarQueue(bucket_width=8, min_buckets=4)
    entries = [(t * 3 % 97, seq) for seq, t in enumerate(range(200))]
    for time, seq in entries:
        queue.push(time, seq, lambda: None)
    assert queue._nb > 4  # grew past the minimum
    drained = []
    while len(queue) > 10:
        drained.append(queue.pop()[:2])
    assert queue._nb < 200  # shrank back down as it emptied
    drained.extend(_drain(queue))
    assert drained == sorted(entries)


def test_empty_pop_raises():
    with pytest.raises(IndexError):
        CalendarQueue().pop()


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=0)
    with pytest.raises(ValueError):
        CalendarQueue(min_buckets=1)
    with pytest.raises(ValueError):
        Simulator(queue="fifo")


class _TokenQueue:
    def __init__(self, name):
        self.tokens = 0
        self.waitset = Waitset(name)


class _Producer:
    """Round-robin producer feeding every consumer queue."""

    def __init__(self, name, queues, sim):
        self.name = name
        self.queues = queues
        self.sim = sim
        self._count = 0

    def ready(self, now):
        return True

    def start(self, now):
        return 1

    def finish(self, now):
        queue = self.queues[self._count % len(self.queues)]
        self._count += 1
        queue.tokens += 1
        queue.waitset.wake()
        self.sim.notify()


class _Consumer:
    def __init__(self, name, queue, sim):
        self.name = name
        self.queue = queue
        self.sim = sim

    def ready(self, now):
        return self.queue.tokens > 0

    def wait_on(self, now):
        return [self.queue.waitset]

    def start(self, now):
        self.queue.tokens -= 1
        return 2

    def finish(self, now):
        self.sim.notify()


def _run_contended(queue_policy, consumers=12, iterations=8):
    """The broadcast-worst-case shape from the kernel bench, small."""
    sim = Simulator(queue=queue_policy)
    queues = [_TokenQueue(f"q{i}") for i in range(consumers)]
    producer = PESequencer(
        sim,
        ProcessingElement(index=0, name="PE0"),
        [_Producer("producer", queues, sim)],
        iterations=iterations * consumers,
    )
    sequencers = [producer]
    for i, queue in enumerate(queues):
        sequencers.append(
            PESequencer(
                sim,
                ProcessingElement(index=i + 1, name=f"PE{i + 1}"),
                [_Consumer(f"cons{i}", queue, sim)],
                iterations=iterations,
            )
        )
    for sequencer in sequencers:
        sequencer.begin()
    sim.run()
    return sim, [list(s.finish_times) for s in sequencers]


def test_calendar_matches_heap_on_contended_graph():
    heap_sim, heap_times = _run_contended("heap")
    cal_sim, cal_times = _run_contended("calendar")
    assert cal_times == heap_times
    assert cal_sim.events_processed == heap_sim.events_processed
    assert cal_sim.queue_policy == "calendar"


def test_calendar_matches_heap_through_spi_run():
    from repro.apps.lpc import build_parallel_error_graph, frame_stream

    frames = frame_stream(total_samples=128, frame_size=64)

    def run(queue):
        system = build_parallel_error_graph(frames, order=4, n_units=2)
        compiled = SpiSystem.compile(system.graph, system.partition)
        return compiled.run(iterations=4, queue=queue)

    heap_run = run("heap")
    calendar_run = run("calendar")
    assert calendar_run.cycles == heap_run.cycles
    assert calendar_run.data_messages == heap_run.data_messages
    assert calendar_run.ack_messages == heap_run.ack_messages
    assert calendar_run.buffer_high_water == heap_run.buffer_high_water
