"""Unit tests for clock domains."""

import pytest

from repro.platform import ClockDomain, DEFAULT_CLOCK


class TestClockDomain:
    def test_default_is_100mhz(self):
        assert DEFAULT_CLOCK.frequency_mhz == 100.0
        assert DEFAULT_CLOCK.period_us == pytest.approx(0.01)

    def test_cycles_to_us(self):
        clock = ClockDomain(100.0)
        assert clock.cycles_to_us(100) == pytest.approx(1.0)
        assert clock.cycles_to_us(250) == pytest.approx(2.5)

    def test_us_to_cycles_ceils(self):
        clock = ClockDomain(100.0)
        assert clock.us_to_cycles(1.0) == 100
        assert clock.us_to_cycles(1.001) == 101

    def test_roundtrip(self):
        clock = ClockDomain(250.0)
        assert clock.us_to_cycles(clock.cycles_to_us(1234)) == 1234

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain(0)
        with pytest.raises(ValueError):
            ClockDomain(-5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CLOCK.frequency_mhz = 500
