"""Steady-state tracker: detection, warp exactness, eligibility, hints.

Unit-level companions to the 50-seed conformance campaign
(``tests/conformance/test_steady_state_equivalence.py``): one small
system is enough to pin each behaviour — warp equals the fully
simulated run, trace runs stay interpreted, ``"on"`` refuses what it
cannot do exactly, and a cached period hint shortens confirmation
without weakening it.
"""

import json

import pytest

from repro.conformance import GraphShape, build_case, generate_spec
from repro.dataflow.graph import GraphError
from repro.service import AnalysisCache
from repro.spi import SpiSystem

STATIC = GraphShape(dynamic_prob=0.0)
DYNAMIC = GraphShape(dynamic_prob=1.0)
ITERATIONS = 12


def _system(seed: int, shape: GraphShape = STATIC, cache=None) -> SpiSystem:
    case = build_case(generate_spec(seed, shape))
    return SpiSystem.compile(case.graph, case.partition, cache=cache)


def _run(seed: int, **kwargs):
    return _system(seed).run(
        iterations=ITERATIONS, max_cycles=10_000_000, **kwargs
    )


def test_warp_matches_full_simulation():
    off = _run(0, steady_state="off")
    auto = _run(0, steady_state="auto")
    report = auto.steady_state
    assert report is not None and report.detected_at is not None
    assert report.extrapolated_iterations > 0
    assert auto.cycles == off.cycles
    assert auto.iteration_period_cycles == off.iteration_period_cycles
    assert auto.data_messages == off.data_messages
    assert auto.ack_messages == off.ack_messages
    assert auto.buffer_high_water == off.buffer_high_water
    assert auto.fifo_high_water == off.fifo_high_water


def test_report_shape_and_serialization():
    report = _run(0, steady_state="auto").steady_state
    assert report.period_iterations >= 1
    assert report.period_cycles > 0
    assert report.boundaries_hashed >= report.detected_at
    assert report.extrapolated_cycles == (
        report.extrapolated_iterations
        // report.period_iterations
        * report.period_cycles
    )
    assert report.hash_trace, "boundary hashes must be recorded"
    iteration, time, digest = report.hash_trace[0]
    assert isinstance(digest, str) and len(digest) == 16
    json.dumps(report.to_json())  # the CI artifact must serialise


def test_off_never_tracks():
    result = _run(0, steady_state="off")
    assert result.steady_state is None
    assert result.extrapolated_iterations == 0


def test_trace_keeps_auto_interpreted():
    """A trace needs every firing interval, so auto silently declines
    rather than producing a trace with a hole warped out of it."""
    result = _run(0, steady_state="auto", trace=True)
    assert result.steady_state is None
    assert result.trace is not None


def test_on_with_trace_raises():
    with pytest.raises(GraphError, match="trace"):
        _run(0, steady_state="on", trace=True)


def test_on_with_opaque_actors_raises():
    """Data-dependent timing without a timing_periodic declaration:
    the hash cannot prove future iterations repeat, so 'on' must refuse
    (and name the offending actors) instead of guessing."""
    system = _system(0, DYNAMIC)
    opaque = system.steady_state_opaque_actors()
    assert opaque
    with pytest.raises(GraphError, match="timing_periodic"):
        system.run(iterations=ITERATIONS, steady_state="on")


def test_auto_declines_opaque_actors():
    result = _system(0, DYNAMIC).run(
        iterations=ITERATIONS, max_cycles=10_000_000, steady_state="auto"
    )
    assert result.steady_state is None


def test_declared_periodic_timing_is_eligible():
    """fig6's actors have callable cycle models but declare
    params['timing_periodic']: 'on' must accept and warp them."""
    from repro.apps.lpc import build_parallel_error_graph, frame_stream

    frames = frame_stream(total_samples=128, frame_size=64)
    system = build_parallel_error_graph(frames, order=4, n_units=2)
    compiled = SpiSystem.compile(system.graph, system.partition)
    assert compiled.steady_state_opaque_actors() == []
    result = compiled.run(iterations=8, steady_state="on")
    assert result.steady_state.detected_at is not None
    assert result.extrapolated_iterations > 0


def test_too_few_iterations_decline():
    """Below three iterations there is nothing to extrapolate."""
    result = _system(0).run(iterations=2, steady_state="auto")
    assert result.steady_state is None


def test_period_hint_shortens_confirmation():
    """Second run of the same system: the cached period replaces the
    second confirmation window, so detection lands earlier — but the
    exact state recurrence is still required, so results stay equal."""
    cache = AnalysisCache()
    first_system = _system(1, cache=cache)
    key = first_system._period_cache_key()
    assert key is not None
    first = first_system.run(iterations=ITERATIONS, steady_state="auto")
    assert first.steady_state.detected_at is not None
    assert not first.steady_state.hint_used
    assert cache.period_hint(key) == (
        first.steady_state.period_iterations,
        first.steady_state.period_cycles,
    )

    second = _system(1, cache=cache).run(
        iterations=ITERATIONS, steady_state="auto"
    )
    assert second.steady_state.hint_used
    assert second.steady_state.detected_at <= first.steady_state.detected_at
    assert second.cycles == first.cycles
    assert second.iteration_period_cycles == first.iteration_period_cycles


def test_metrics_document_carries_steady_counters():
    from repro.observability import validate_metrics

    result = _run(0, steady_state="auto", metrics=True)
    validate_metrics(result.metrics)
    sim = result.metrics["simulator"]
    assert sim["steady_state_detected_at"] == result.steady_state_detected_at
    assert sim["extrapolated_iterations"] == result.extrapolated_iterations
    assert sim["compiled_firings"] == result.compiled_firings
    assert sim["extrapolated_iterations"] < result.iterations
