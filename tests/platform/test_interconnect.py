"""Unit tests for the link/interconnect model."""

import pytest

from repro.platform import Interconnect, LinkSpec


class TestLinkSpec:
    def test_transfer_cycles(self):
        spec = LinkSpec(setup_cycles=4, word_bytes=4, cycles_per_word=1)
        assert spec.transfer_cycles(0) == 4
        assert spec.transfer_cycles(1) == 5
        assert spec.transfer_cycles(4) == 5
        assert spec.transfer_cycles(5) == 6
        assert spec.transfer_cycles(16) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(setup_cycles=-1)
        with pytest.raises(ValueError):
            LinkSpec(word_bytes=0)
        with pytest.raises(ValueError):
            LinkSpec(cycles_per_word=-1)
        with pytest.raises(ValueError):
            LinkSpec().transfer_cycles(-1)

    def test_negative_setup_cycles_pinned(self):
        # Regression pin: a dataclass field default change or a
        # refactor of __post_init__ must not drop this validation —
        # a negative setup time silently *subtracts* cycles from every
        # transfer, which the cost model would never flag on its own.
        with pytest.raises(ValueError, match="setup_cycles must be >= 0"):
            LinkSpec(setup_cycles=-1)
        # the per-pair override path builds LinkSpec too: same guard
        with pytest.raises(ValueError, match="setup_cycles must be >= 0"):
            Interconnect(overrides={(0, 1): LinkSpec(setup_cycles=-3)})

    def test_zero_latency_link(self):
        # cycles_per_word=0 expresses the ideal link of the kernel
        # micro-benchmarks: every transfer completes in setup time only.
        spec = LinkSpec(setup_cycles=0, cycles_per_word=0)
        assert spec.transfer_cycles(0) == 0
        assert spec.transfer_cycles(64) == 0


class TestLink:
    def test_reserve_serializes(self):
        net = Interconnect(LinkSpec(setup_cycles=2, word_bytes=4))
        link = net.link(0, 1)
        start1, arrive1 = link.reserve(now=0, message_bytes=8)
        assert (start1, arrive1) == (0, 4)
        start2, arrive2 = link.reserve(now=0, message_bytes=8)
        assert start2 == 4  # waits for the first transfer
        assert arrive2 == 8

    def test_idle_link_starts_immediately(self):
        net = Interconnect()
        link = net.link(0, 1)
        link.reserve(now=0, message_bytes=4)
        start, _ = link.reserve(now=100, message_bytes=4)
        assert start == 100

    def test_stats(self):
        net = Interconnect()
        link = net.link(0, 1)
        link.reserve(0, 10)
        link.reserve(0, 6)
        assert link.bytes_carried == 16
        assert link.messages_carried == 2

    def test_reset(self):
        net = Interconnect()
        link = net.link(0, 1)
        link.reserve(0, 10)
        net.reset()
        assert link.busy_until == 0
        assert net.total_bytes() == 0


class TestInterconnect:
    def test_directional_links_distinct(self):
        net = Interconnect()
        assert net.link(0, 1) is not net.link(1, 0)
        assert net.link(0, 1) is net.link(0, 1)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError, match="same-PE"):
            Interconnect().link(2, 2)

    def test_override_spec_per_pair(self):
        slow = LinkSpec(setup_cycles=100)
        net = Interconnect(overrides={(0, 1): slow})
        assert net.link(0, 1).spec.setup_cycles == 100
        assert net.link(1, 0).spec.setup_cycles == 4  # default

    def test_totals_across_links(self):
        net = Interconnect()
        net.link(0, 1).reserve(0, 10)
        net.link(1, 0).reserve(0, 20)
        assert net.total_bytes() == 30
        assert net.total_messages() == 2
