"""Content-addressed analysis cache: keys, tiers, compile equivalence."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dataflow import DataflowGraph
from repro.mapping import McmResult, Partition
from repro.service import AnalysisCache, analysis_key, graph_fingerprint
from repro.service.cache import structure_key
from repro.spi import SpiConfig, SpiSystem

REPO_ROOT = Path(__file__).resolve().parents[2]


def _toy_graph(name="toy", cycles_b=20):
    graph = DataflowGraph(name)
    a = graph.actor("A", cycles=10)
    b = graph.actor("B", cycles=cycles_b)
    out = a.add_output("out", rate=2)
    inp = b.add_input("inp", rate=1)
    graph.connect(out, inp)
    return graph


def _toy_partition(graph):
    return Partition(graph, 2, {"A": 0, "B": 1})


class TestFingerprint:
    def test_identical_structure_identical_fingerprint(self):
        assert graph_fingerprint(_toy_graph()) == graph_fingerprint(
            _toy_graph()
        )

    def test_name_does_not_affect_fingerprint(self):
        """conform_seed17 and conform_seed42 with the same structure
        must collide — the cache is content-addressed, not name-keyed."""
        assert graph_fingerprint(_toy_graph("x")) == graph_fingerprint(
            _toy_graph("y")
        )

    def test_structure_changes_the_fingerprint(self):
        assert graph_fingerprint(_toy_graph()) != graph_fingerprint(
            _toy_graph(cycles_b=21)
        )

    def test_callable_cycles_disable_fingerprinting(self):
        """A data-dependent cycle model has no canonical content; the
        cache must silently bypass instead of aliasing graphs."""
        graph = _toy_graph()
        graph.get_actor("B").cycles = lambda firing, inputs: 20
        assert graph_fingerprint(graph) is None
        assert analysis_key(graph, _toy_partition(graph), SpiConfig()) is None


class TestKeys:
    def test_analysis_key_covers_analysis_relevant_config(self):
        graph = _toy_graph()
        partition = _toy_partition(graph)
        base = analysis_key(graph, partition, SpiConfig())
        assert base is not None
        # resynchronize changes surviving ACK edges -> must change the key
        assert base != analysis_key(
            graph, partition, SpiConfig(resynchronize=False)
        )
        assert base != analysis_key(
            graph, partition, SpiConfig(protocol_policy="always_ubs")
        )

    def test_analysis_key_ignores_execution_only_config(self):
        graph = _toy_graph()
        partition = _toy_partition(graph)
        assert analysis_key(graph, partition, SpiConfig()) == analysis_key(
            graph, partition, SpiConfig(transport="shared_bus")
        )

    def test_structure_key_shared_across_protocol_configs(self):
        """The repetitions vector depends only on graph structure, so
        the oracle run matrix (spi / spi-noresync / spi-ubs) shares it."""
        graph = _toy_graph()
        partition = _toy_partition(graph)
        assert structure_key(graph, partition, SpiConfig()) == structure_key(
            graph,
            partition,
            SpiConfig(resynchronize=False, protocol_policy="always_ubs"),
        )

    def test_key_stable_across_process_boundaries(self):
        """Shards compute keys independently; the same graph must hash
        identically in a fresh interpreter."""
        script = (
            "from repro.dataflow import DataflowGraph\n"
            "from repro.mapping import Partition\n"
            "from repro.service import analysis_key\n"
            "from repro.spi import SpiConfig\n"
            "g = DataflowGraph('toy')\n"
            "a = g.actor('A', cycles=10)\n"
            "b = g.actor('B', cycles=20)\n"
            "g.connect(a.add_output('out', rate=2), "
            "b.add_input('inp', rate=1))\n"
            "p = Partition(g, 2, {'A': 0, 'B': 1})\n"
            "print(analysis_key(g, p, SpiConfig()))\n"
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
            cwd=REPO_ROOT,
        )
        assert remote.returncode == 0, remote.stderr
        graph = _toy_graph()
        local = analysis_key(graph, _toy_partition(graph), SpiConfig())
        assert remote.stdout.strip() == local


class TestCompileEquivalence:
    def test_cached_compile_matches_uncached(self):
        """The tentpole soundness property: compiling through a warm
        cache must produce the same system as compiling cold."""
        cache = AnalysisCache()

        def compile_once(with_cache):
            graph = _toy_graph()
            return SpiSystem.compile(
                graph,
                _toy_partition(graph),
                SpiConfig(),
                cache=cache if with_cache else None,
            )

        cold = compile_once(False)
        miss = compile_once(True)  # populates
        hit = compile_once(True)  # replays
        assert cache.total_hits > 0

        reference = cold.run(iterations=4, metrics=True)
        for system in (miss, hit):
            for name, plan in system.channel_plans.items():
                assert plan.protocol == cold.channel_plans[name].protocol
                assert (
                    plan.capacity_messages
                    == cold.channel_plans[name].capacity_messages
                )
                assert (
                    plan.acks_enabled == cold.channel_plans[name].acks_enabled
                )
            result = system.run(iterations=4, metrics=True)
            assert result.cycles == reference.cycles
            assert (
                result.metrics["wire_byte_split"]
                == reference.metrics["wire_byte_split"]
            )

    def test_repetitions_and_mcm_cached(self):
        cache = AnalysisCache()
        graph = _toy_graph()
        system = SpiSystem.compile(
            graph, _toy_partition(graph), SpiConfig(), cache=cache
        )
        uncached_graph = _toy_graph()
        uncached = SpiSystem.compile(
            uncached_graph, _toy_partition(uncached_graph), SpiConfig()
        )
        assert system.task_repetitions() == uncached.task_repetitions()
        assert (
            system.estimated_iteration_period_cycles()
            == uncached.estimated_iteration_period_cycles()
        )
        before = cache.total_hits
        graph2 = _toy_graph()
        system2 = SpiSystem.compile(
            graph2, _toy_partition(graph2), SpiConfig(), cache=cache
        )
        system2.task_repetitions()
        system2.estimated_iteration_period_cycles()
        assert cache.total_hits > before


class TestDiskTier:
    def test_round_trip_between_instances(self, tmp_path):
        graph = _toy_graph()
        partition = _toy_partition(graph)

        writer = AnalysisCache(path=tmp_path)
        key = writer.key_for(graph, partition, SpiConfig())
        assert writer.repetitions(key, lambda: {"A": 1, "B": 2}) == {
            "A": 1,
            "B": 2,
        }
        assert writer.misses["repetitions"] == 1

        reader = AnalysisCache(path=tmp_path)
        computed = []
        value = reader.repetitions(
            key, lambda: computed.append(True) or {}
        )
        assert value == {"A": 1, "B": 2}
        assert computed == []  # served from disk, compute never ran
        assert reader.hits["repetitions"] == 1

    def test_disk_files_are_valid_json(self, tmp_path):
        cache = AnalysisCache(path=tmp_path)
        graph = _toy_graph()
        key = cache.key_for(graph, _toy_partition(graph), SpiConfig())
        cache.mcm(
            key,
            lambda: McmResult(
                value=12.5,
                cycle=("A", "B"),
                total_cycles=25,
                total_delay=2,
            ),
        )
        files = list(Path(tmp_path).rglob("*.json"))
        assert len(files) == 1
        assert json.loads(files[0].read_text()) == {
            "value": 12.5,
            "cycle": ["A", "B"],
            "total_cycles": 25,
            "total_delay": 2,
            "algorithm": "howard",
        }

    def test_witnessless_legacy_mcm_entry_still_loads(self, tmp_path):
        cache = AnalysisCache(path=tmp_path)
        graph = _toy_graph()
        key = cache.key_for(graph, _toy_partition(graph), SpiConfig())
        # A pre-witness cache entry carries only the bound.
        target = tmp_path / key[:2] / f"{key}.mcm.json"
        target.parent.mkdir(parents=True)
        target.write_text(json.dumps({"value": 4.0}))
        result = cache.mcm(key, lambda: pytest.fail("must hit the cache"))
        assert result.value == 4.0
        assert result.cycle == ()

    def test_none_key_bypasses_cache(self):
        cache = AnalysisCache()
        assert cache.repetitions(None, lambda: {"A": 3}) == {"A": 3}
        assert cache.repetitions(None, lambda: {"A": 3}) == {"A": 3}
        assert cache.total_hits == 0
        assert cache.total_misses == 0
