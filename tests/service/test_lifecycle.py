"""Run-lifecycle records: state machine, serialisation, persistence."""

import pytest

from repro.service import LifecycleError, RunRecord, RunStore
from repro.service.lifecycle import RUN_SCHEMA


def _record():
    return RunRecord(
        run_id="test-00001", operation="conform.seed", params={"seed": 1}
    )


class TestStateMachine:
    def test_happy_path(self):
        record = _record()
        assert record.state == "queued"
        record.mark_running(shard=2)
        assert record.state == "running"
        assert record.shard == 2
        record.mark_done(metrics={"cycles": 42})
        assert record.state == "done"
        assert record.metrics == {"cycles": 42}
        assert record.wall_seconds is not None
        assert record.wall_seconds >= 0.0

    def test_failure_path(self):
        record = _record()
        record.mark_running()
        record.mark_failed("RuntimeError: boom")
        assert record.state == "failed"
        assert record.error == "RuntimeError: boom"

    @pytest.mark.parametrize(
        "steps",
        [
            ("mark_done",),  # queued -> done skips running
            ("mark_failed",),  # queued -> failed skips running
            ("mark_running", "mark_running"),  # double start
            ("mark_running", "mark_done", "mark_failed"),  # done is terminal
            ("mark_running", "mark_failed", "mark_running"),  # failed too
        ],
    )
    def test_illegal_transitions(self, steps):
        record = _record()
        with pytest.raises(LifecycleError, match="illegal transition"):
            for step in steps:
                if step == "mark_failed":
                    record.mark_failed("x")
                else:
                    getattr(record, step)()

    def test_wall_seconds_none_until_finished(self):
        record = _record()
        assert record.wall_seconds is None
        record.mark_running()
        assert record.wall_seconds is None


class TestSerialisation:
    def test_round_trip(self):
        record = _record()
        record.mark_running(shard=1)
        record.mark_done(metrics={"ok": True})
        record.artifacts.append("results/foo.json")
        raw = record.to_json()
        assert raw["schema"] == RUN_SCHEMA
        clone = RunRecord.from_json(raw)
        assert clone.to_json() == raw

    def test_unknown_schema_rejected(self):
        raw = _record().to_json()
        raw["schema"] = "repro.run/99"
        with pytest.raises(ValueError, match="unknown run-record schema"):
            RunRecord.from_json(raw)


class TestRunStore:
    def test_save_load_list(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = _record()
        second = RunRecord(run_id="test-00002", operation="simulate.app")
        second.mark_running()
        second.mark_failed("boom")
        store.save(first)
        store.save(second)

        assert store.load("test-00001").state == "queued"
        assert store.load("test-00002").error == "boom"
        listed = store.list()
        assert [record.run_id for record in listed] == [
            "test-00001",
            "test-00002",
        ]

    def test_save_overwrites_in_place(self, tmp_path):
        store = RunStore(tmp_path)
        record = _record()
        store.save(record)
        record.mark_running()
        record.mark_done()
        store.save(record)
        assert store.load(record.run_id).state == "done"
        assert len(store.list()) == 1
