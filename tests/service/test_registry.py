"""Operation registry: spec validation, lookup, execution plumbing."""

import pytest

from repro.service import (
    OperationSpec,
    Param,
    RegistryError,
    RunContext,
    get_operation,
    list_operations,
    run_operation,
)


def _spec():
    return OperationSpec(
        params=(
            Param("seed", int, required=True, minimum=0),
            Param("iterations", int, default=4, minimum=1),
            Param("quick", bool, default=False),
            Param("app", str, default="lpc", choices=("lpc", "pf")),
            Param("shape", dict, default=None),
        )
    )


class TestParamValidation:
    def test_fills_defaults(self):
        resolved = _spec().validate({"seed": 3})
        assert resolved == {
            "seed": 3,
            "iterations": 4,
            "quick": False,
            "app": "lpc",
            "shape": None,
        }

    def test_unknown_param_rejected(self):
        with pytest.raises(RegistryError, match="unknown parameter"):
            _spec().validate({"seed": 1, "sneed": 2})

    def test_missing_required_rejected(self):
        with pytest.raises(RegistryError, match="missing required"):
            _spec().validate({"iterations": 2})

    def test_wrong_type_rejected(self):
        with pytest.raises(RegistryError, match="expected int, got str"):
            _spec().validate({"seed": "7"})

    def test_bool_is_not_an_int(self):
        # bool subclasses int; an int param must still reject it
        with pytest.raises(RegistryError, match="expected int, got bool"):
            _spec().validate({"seed": True})

    def test_minimum_enforced(self):
        with pytest.raises(RegistryError, match="below the minimum"):
            _spec().validate({"seed": -1})

    def test_choices_enforced(self):
        with pytest.raises(RegistryError, match="not in"):
            _spec().validate({"seed": 0, "app": "fft"})

    def test_validation_is_idempotent(self):
        """A defaulted dict (parent-validated campaign unit) must pass a
        second validation unchanged — including None-valued defaults."""
        first = _spec().validate({"seed": 5})
        assert _spec().validate(first) == first


class TestRegistry:
    def test_unknown_operation(self):
        with pytest.raises(RegistryError, match="unknown operation"):
            get_operation("no.such.op")

    def test_builtins_registered(self):
        names = [operation.name for operation in list_operations()]
        for expected in (
            "ablate.resync",
            "bench.figure",
            "conform.seed",
            "simulate.app",
        ):
            assert expected in names

    def test_run_operation_validates_before_executing(self):
        with pytest.raises(RegistryError, match="missing required"):
            run_operation("conform.seed", {})

    def test_run_operation_executes(self):
        result = run_operation(
            "simulate.app",
            {"app": "lpc", "pes": 2, "iterations": 2},
            RunContext(),
        )
        assert result.ok
        assert result.payload["cycles"] > 0

    def test_every_builtin_documents_its_params(self):
        for operation in list_operations():
            assert operation.description
            for param in operation.spec.params:
                assert param.help
