"""Shard pool: work distribution, exception and crash isolation."""

import os
import time

import pytest

from repro.service import ShardPool


def _square(unit):
    return unit * unit


def _boom_on_three(unit):
    if unit == 3:
        raise RuntimeError("boom on three")
    return unit * 10


def _exit_on_three(unit):
    if unit == 3:
        # let the queue feeder thread flush earlier results first, so
        # the crash takes down exactly one unit
        time.sleep(0.3)
        os._exit(13)  # hard crash: no exception, no cleanup
    return unit * 10


class TestInline:
    def test_runs_everything_in_order(self):
        results = ShardPool(workers=1).run(_square, [1, 2, 3, 4])
        assert [r.index for r in results] == [0, 1, 2, 3]
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [1, 4, 9, 16]

    def test_exception_is_isolated_to_its_unit(self):
        results = ShardPool(workers=1).run(_boom_on_three, [1, 2, 3, 4])
        assert [r.ok for r in results] == [True, True, False, True]
        assert "boom on three" in results[2].error
        assert [r.value for r in results if r.ok] == [10, 20, 40]

    def test_callbacks_fire_per_unit(self):
        events = []
        ShardPool(workers=1).run(
            _square,
            [5, 6],
            on_start=lambda index, shard: events.append(("start", index)),
            on_result=lambda result: events.append(("result", result.index)),
        )
        assert events == [
            ("start", 0),
            ("result", 0),
            ("start", 1),
            ("result", 1),
        ]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ShardPool(workers=0)


class TestMultiprocess:
    def test_results_ordered_by_unit_index(self):
        results = ShardPool(workers=2).run(_square, list(range(8)))
        assert [r.index for r in results] == list(range(8))
        assert [r.value for r in results] == [i * i for i in range(8)]

    def test_exception_does_not_kill_the_campaign(self):
        """A unit raising inside a shard fails alone; the shard keeps
        pulling work and every other unit completes."""
        results = ShardPool(workers=2).run(
            _boom_on_three, [1, 2, 3, 4, 5, 6]
        )
        by_ok = [r.ok for r in results]
        assert by_ok == [True, True, False, True, True, True]
        assert "boom on three" in results[2].error

    def test_crashed_shard_is_isolated_and_replaced(self):
        """A unit hard-killing its shard process fails alone; the parent
        detects the dead shard, respawns, and the rest completes."""
        results = ShardPool(workers=2).run(
            _exit_on_three, [1, 2, 3, 4, 5, 6, 7, 8]
        )
        assert len(results) == 8
        crashed = [r for r in results if not r.ok]
        assert [r.index for r in crashed] == [2]
        assert "crashed" in crashed[0].error
        completed = [r for r in results if r.ok]
        assert sorted(r.value for r in completed) == [
            10, 20, 40, 50, 60, 70, 80,
        ]
