"""Campaign engine: lifecycle persistence, isolation, determinism."""

import pytest

from repro.service import (
    CampaignPlan,
    Operation,
    OperationResult,
    OperationSpec,
    Param,
    RunStore,
    run_service_campaign,
)
from repro.service.campaign import CAMPAIGN_SCHEMA
from repro.service.registry import _REGISTRY, register_operation

if "test.flaky" not in _REGISTRY:

    @register_operation
    class _FlakyOperation(Operation):
        """Test-only operation: raises on value 3, succeeds otherwise."""

        name = "test.flaky"
        description = "test fixture"
        spec = OperationSpec(
            params=(Param("value", int, required=True, help="input"),)
        )

        def execute(self, params, context):
            if params["value"] == 3:
                raise RuntimeError("flaky unit exploded")
            return OperationResult(
                status="completed",
                payload={"value": params["value"] * 2},
                metrics={"cycles": params["value"]},
            )


def _units(values):
    return [{"value": value} for value in values]


class TestCampaignLifecycle:
    def test_records_persisted_with_terminal_states(self, tmp_path):
        runs_dir = tmp_path / "runs"
        report = run_service_campaign(
            CampaignPlan(
                operation="test.flaky",
                units=_units([1, 2, 4]),
                runs_dir=str(runs_dir),
                name="persist",
            )
        )
        assert report["schema"] == CAMPAIGN_SCHEMA
        assert report["completed"] == 3

        records = RunStore(runs_dir).list()
        assert [record.run_id for record in records] == [
            "persist-00000",
            "persist-00001",
            "persist-00002",
        ]
        for record in records:
            assert record.state == "done"
            assert record.operation == "test.flaky"
            assert record.wall_seconds is not None

    def test_failed_unit_is_recorded_as_failed(self, tmp_path):
        report = run_service_campaign(
            CampaignPlan(
                operation="test.flaky",
                units=_units([1, 3, 4]),
                runs_dir=str(tmp_path),
                name="fails",
            )
        )
        assert report["completed"] == 2
        assert len(report["failures"]) == 1
        assert report["failures"][0]["run_id"] == "fails-00001"
        assert "flaky unit exploded" in report["failures"][0]["error"]

        store = RunStore(tmp_path)
        assert store.load("fails-00000").state == "done"
        failed = store.load("fails-00001")
        assert failed.state == "failed"
        assert "flaky unit exploded" in failed.error
        assert store.load("fails-00002").state == "done"

    def test_malformed_unit_fails_before_any_execution(self, tmp_path):
        from repro.service import RegistryError

        with pytest.raises(RegistryError, match="expected int, got str"):
            run_service_campaign(
                CampaignPlan(
                    operation="test.flaky",
                    units=[{"value": 1}, {"value": "nope"}],
                    runs_dir=str(tmp_path),
                )
            )
        assert RunStore(tmp_path).list() == []  # nothing was started

    def test_failure_isolation_across_shards(self):
        """One raising unit must not take the rest of a multiprocess
        campaign down with it."""
        report = run_service_campaign(
            CampaignPlan(
                operation="test.flaky",
                units=_units([1, 2, 3, 4, 5, 6]),
                workers=2,
            )
        )
        assert report["completed"] == 5
        assert [f["index"] for f in report["failures"]] == [2]
        values = [
            result["payload"]["value"] if result else None
            for result in report["results"]
        ]
        assert values == [2, 4, None, 8, 10, 12]


def _conform_cases(report):
    return [result["payload"]["case"] for result in report["results"]]


def _conform_plan(seeds, workers=1, use_cache=True):
    return CampaignPlan(
        operation="conform.seed",
        units=[
            {"seed": seed, "quick": True, "shrink": False} for seed in seeds
        ],
        workers=workers,
        use_cache=use_cache,
    )


class TestCampaignDeterminism:
    # repeated-graph list: seeds repeat, so the cache is exercised
    SEEDS = [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_cached_matches_uncached_verdicts(self):
        """Acceptance criterion: the analysis cache must not change any
        oracle verdict."""
        cached = run_service_campaign(_conform_plan(self.SEEDS))
        uncached = run_service_campaign(
            _conform_plan(self.SEEDS, use_cache=False)
        )
        assert cached["cache"]["hits"] > 0
        assert uncached["cache"]["hits"] == 0
        assert _conform_cases(cached) == _conform_cases(uncached)

    def test_sharded_matches_inline_verdicts(self):
        inline = run_service_campaign(_conform_plan(self.SEEDS, workers=1))
        sharded = run_service_campaign(_conform_plan(self.SEEDS, workers=2))
        assert _conform_cases(inline) == _conform_cases(sharded)

    def test_repeated_campaigns_are_independent(self):
        """Each campaign gets a fresh cache: hit/miss accounting must be
        identical on a second identical campaign, not all-hits."""
        first = run_service_campaign(_conform_plan(self.SEEDS))
        second = run_service_campaign(_conform_plan(self.SEEDS))
        assert first["cache"] == second["cache"]
