"""BENCH_*.json perf documents: schema and writer behaviour."""

import json

import pytest

from repro.observability import (
    BENCH_SCHEMA,
    BenchValidationError,
    bench_document,
    validate_bench,
    write_bench_json,
)


def test_document_shape():
    document = bench_document(
        "fig6_lpc_scaling",
        makespan_cycles=5000,
        iteration_period_cycles=1000.0,
        wall_seconds=0.5,
        quick=True,
        extra={"n_units": 4},
    )
    assert document["schema"] == BENCH_SCHEMA
    assert document["cycles_per_wall_second"] == 10000.0
    assert document["quick"] is True
    assert document["extra"] == {"n_units": 4}


def test_zero_wall_time_is_safe():
    document = bench_document(
        "x", makespan_cycles=10, iteration_period_cycles=1.0, wall_seconds=0.0
    )
    assert document["cycles_per_wall_second"] == 0.0


def test_negative_wall_time_rejected():
    with pytest.raises(ValueError):
        bench_document(
            "x",
            makespan_cycles=10,
            iteration_period_cycles=1.0,
            wall_seconds=-1.0,
        )


def test_write_round_trips(tmp_path):
    document = bench_document(
        "smoke", makespan_cycles=42, iteration_period_cycles=7.0,
        wall_seconds=0.1,
    )
    path = write_bench_json(tmp_path, document)
    assert path.name == "BENCH_smoke.json"
    loaded = json.loads(path.read_text())
    assert loaded == document


def test_write_rejects_foreign_documents(tmp_path):
    with pytest.raises(ValueError, match="schema"):
        write_bench_json(tmp_path, {"name": "x"})


def test_periodic_workload_rejects_zero_period():
    """The historical BENCH_kernel.json bug: a workload that declares
    itself periodic but reports iteration_period_cycles=0.0 means the
    producer never computed the period — the schema gate refuses it."""
    document = bench_document(
        "kernel",
        makespan_cycles=100,
        iteration_period_cycles=0.0,
        wall_seconds=0.1,
        extra={"periodic": True},
    )
    with pytest.raises(BenchValidationError, match="periodic"):
        validate_bench(document)


def test_periodic_workload_rejects_negative_period(tmp_path):
    document = bench_document(
        "kernel",
        makespan_cycles=100,
        iteration_period_cycles=-3.0,
        wall_seconds=0.1,
        extra={"periodic": True},
    )
    with pytest.raises(BenchValidationError, match="periodic"):
        write_bench_json(tmp_path, document)


def test_non_periodic_workload_allows_zero_period(tmp_path):
    """Synthetic kernel microbenches have no iteration period; only a
    declared-periodic workload is held to a positive one."""
    document = bench_document(
        "scratch",
        makespan_cycles=100,
        iteration_period_cycles=0.0,
        wall_seconds=0.1,
    )
    validate_bench(document)
    assert write_bench_json(tmp_path, document).exists()


def test_periodic_workload_accepts_real_period():
    document = bench_document(
        "kernel",
        makespan_cycles=100,
        iteration_period_cycles=3118.0,
        wall_seconds=0.1,
        extra={"periodic": True},
    )
    validate_bench(document)


def test_missing_keys_rejected():
    document = bench_document(
        "x", makespan_cycles=1, iteration_period_cycles=1.0, wall_seconds=0.1
    )
    del document["wall_seconds"]
    with pytest.raises(BenchValidationError, match="wall_seconds"):
        validate_bench(document)


def test_committed_kernel_baseline_validates():
    """The committed full-mode baseline must itself pass the gate that
    write_bench_json applies — including the positive-period rule."""
    from pathlib import Path

    baseline = (
        Path(__file__).parent.parent.parent
        / "benchmarks"
        / "results"
        / "BENCH_kernel.json"
    )
    document = json.loads(baseline.read_text())
    validate_bench(document)
    assert document["extra"]["periodic"] is True
    assert document["iteration_period_cycles"] > 0
