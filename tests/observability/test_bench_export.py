"""BENCH_*.json perf documents: schema and writer behaviour."""

import json

import pytest

from repro.observability import BENCH_SCHEMA, bench_document, write_bench_json


def test_document_shape():
    document = bench_document(
        "fig6_lpc_scaling",
        makespan_cycles=5000,
        iteration_period_cycles=1000.0,
        wall_seconds=0.5,
        quick=True,
        extra={"n_units": 4},
    )
    assert document["schema"] == BENCH_SCHEMA
    assert document["cycles_per_wall_second"] == 10000.0
    assert document["quick"] is True
    assert document["extra"] == {"n_units": 4}


def test_zero_wall_time_is_safe():
    document = bench_document(
        "x", makespan_cycles=10, iteration_period_cycles=1.0, wall_seconds=0.0
    )
    assert document["cycles_per_wall_second"] == 0.0


def test_negative_wall_time_rejected():
    with pytest.raises(ValueError):
        bench_document(
            "x",
            makespan_cycles=10,
            iteration_period_cycles=1.0,
            wall_seconds=-1.0,
        )


def test_write_round_trips(tmp_path):
    document = bench_document(
        "smoke", makespan_cycles=42, iteration_period_cycles=7.0,
        wall_seconds=0.1,
    )
    path = write_bench_json(tmp_path, document)
    assert path.name == "BENCH_smoke.json"
    loaded = json.loads(path.read_text())
    assert loaded == document


def test_write_rejects_foreign_documents(tmp_path):
    with pytest.raises(ValueError, match="schema"):
        write_bench_json(tmp_path, {"name": "x"})
