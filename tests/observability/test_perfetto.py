"""The Chrome/Perfetto trace export round-trips and carries the
required trace_event keys."""

import json

import pytest

from repro.dataflow import DataflowGraph
from repro.mapping import Partition
from repro.observability import INTERCONNECT_PID, PE_PID, chrome_trace
from repro.spi import SpiSystem


@pytest.fixture(scope="module")
def run():
    graph = DataflowGraph("traced")
    a = graph.actor("A", cycles=10)
    b = graph.actor("B", cycles=20)
    a.add_output("o")
    b.add_input("i")
    graph.connect((a, "o"), (b, "i"))
    partition = Partition.manual(graph, {"A": 0, "B": 1})
    return SpiSystem.compile(graph, partition).run(
        iterations=4, trace=True, metrics=True
    )


@pytest.fixture(scope="module")
def document(run):
    # Round-trip through the serialised form: what Perfetto would load.
    return json.loads(
        json.dumps(chrome_trace(run.trace, run.message_log, clock_mhz=100.0))
    )


def test_top_level_shape(document):
    assert "traceEvents" in document
    assert document["traceEvents"]


def test_every_event_has_required_keys(document):
    for event in document["traceEvents"]:
        assert "ph" in event
        assert "ts" in event
        assert "pid" in event


def test_task_slices_are_complete_events(document, run):
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == len(run.trace.events)
    for event in slices:
        assert event["pid"] == PE_PID
        assert event["dur"] >= 0
        assert "iteration" in event["args"]


def test_one_named_thread_per_pe(document, run):
    names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in document["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    for pe in {e.pe for e in run.trace.events}:
        assert names[(PE_PID, pe)] == f"PE{pe}"


def test_messages_become_paired_async_events(document, run):
    begins = [e for e in document["traceEvents"] if e["ph"] == "b"]
    ends = [e for e in document["traceEvents"] if e["ph"] == "e"]
    assert len(begins) == len(run.message_log)
    assert len(ends) == len(run.message_log)
    by_id = {e["id"]: e for e in begins}
    for end in ends:
        begin = by_id[end["id"]]
        assert begin["pid"] == INTERCONNECT_PID
        assert end["ts"] >= begin["ts"]
        assert begin["args"]["src_pe"] != begin["args"]["dst_pe"]


def test_timestamps_scale_with_clock(run):
    fast = chrome_trace(run.trace, clock_mhz=200.0)
    slow = chrome_trace(run.trace, clock_mhz=100.0)
    fast_ts = [e["ts"] for e in fast["traceEvents"] if e["ph"] == "X"]
    slow_ts = [e["ts"] for e in slow["traceEvents"] if e["ph"] == "X"]
    for f, s in zip(fast_ts, slow_ts):
        assert f == pytest.approx(s / 2)


def test_invalid_clock_rejected(run):
    with pytest.raises(ValueError):
        chrome_trace(run.trace, clock_mhz=0)
