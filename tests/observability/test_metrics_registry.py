"""Unit tests for the metric primitives and their registry."""

import pytest

from repro.observability import METRICS_SCHEMA, MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("messages", channel="e0")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("messages").inc(-1)

    def test_same_labels_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("m", channel="x", kind="data")
        b = registry.counter("m", kind="data", channel="x")
        assert a is b

    def test_different_labels_different_instances(self):
        registry = MetricsRegistry()
        assert registry.counter("m", channel="x") is not registry.counter(
            "m", channel="y"
        )


class TestGauge:
    def test_tracks_high_water(self):
        gauge = MetricsRegistry().gauge("occupancy")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 7

    def test_add(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.add(5)
        gauge.add(-2)
        assert gauge.value == 3
        assert gauge.high_water == 5


class TestHistogram:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("delay")
        for value in (4, 10, 1):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15
        assert histogram.minimum == 1
        assert histogram.maximum == 10
        assert histogram.mean == 5.0

    def test_empty_mean_is_zero(self):
        assert MetricsRegistry().histogram("delay").mean == 0.0


class TestRegistryExport:
    def test_as_dict_schema(self):
        registry = MetricsRegistry()
        registry.counter("messages", channel="e0").inc(2)
        registry.gauge("occupancy").set(1)
        registry.histogram("delay").observe(9)
        document = registry.as_dict()
        assert document["schema"] == METRICS_SCHEMA
        assert len(document["metrics"]) == 3
        by_name = {m["name"]: m for m in document["metrics"]}
        assert by_name["messages"]["value"] == 2
        assert by_name["messages"]["labels"] == {"channel": "e0"}
        assert by_name["occupancy"]["high_water"] == 1
        assert by_name["delay"]["mean"] == 9.0

    def test_len_and_iter(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.counter("b")
        assert len(registry) == 2
        assert {m.name for m in registry} == {"a", "b"}
