"""The run-level metrics document: schema, soundness, paper graphs.

The load-bearing invariant: per-channel occupancy high-water marks never
exceed the compile-time bound ``B(e)`` (plus the one in-flight receive
slot) — checked here on both paper applications.
"""

import pytest

from repro.apps.lpc import build_parallel_error_graph, frame_stream
from repro.apps.particle_filter import (
    CrackGrowthModel,
    build_particle_filter_graph,
    simulate_crack_history,
)
from repro.dataflow import DataflowGraph
from repro.mapping import Partition
from repro.observability import (
    METRICS_SCHEMA,
    MetricsValidationError,
    validate_metrics,
)
from repro.spi import SpiConfig, SpiSystem


def small_system(transport="p2p", policy="auto"):
    graph = DataflowGraph("doc")
    a = graph.actor("A", cycles=10)
    b = graph.actor("B", cycles=20)
    a.add_output("o")
    b.add_input("i")
    graph.connect((a, "o"), (b, "i"))
    partition = Partition.manual(graph, {"A": 0, "B": 1})
    return SpiSystem.compile(
        graph, partition, SpiConfig(transport=transport, protocol_policy=policy)
    )


@pytest.fixture(scope="module")
def lpc_result():
    frames = frame_stream(total_samples=2 * 256, frame_size=256)
    system = build_parallel_error_graph(frames, order=8, n_units=3)
    compiled = SpiSystem.compile(system.graph, system.partition)
    return compiled.run(iterations=6, metrics=True)


@pytest.fixture(scope="module")
def pf_result():
    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=4)
    system = build_particle_filter_graph(
        model, observations, n_particles=100, n_pes=2
    )
    compiled = SpiSystem.compile(system.graph, system.partition)
    return compiled.run(iterations=4, metrics=True)


class TestDocumentShape:
    def test_disabled_by_default(self):
        assert small_system().run(iterations=2).metrics is None

    def test_schema_and_validation(self):
        result = small_system().run(iterations=3, metrics=True)
        document = result.metrics
        assert document["schema"] == METRICS_SCHEMA
        validate_metrics(document)

    def test_simulator_counters_populated(self):
        document = small_system().run(iterations=3, metrics=True).metrics
        sim = document["simulator"]
        assert sim["events_processed"] > 0
        assert sim["parks"] >= 0
        assert sim["retry_rounds"] <= sim["parks"] + sim["events_processed"]
        assert sim["wakeup_policy"] == "targeted"
        assert sim["total_wakeups"] == (
            sim["targeted_wakeups"] + sim["broadcast_wakeups"]
        )
        assert sim["spurious_wakeups"] <= sim["total_wakeups"]

    def test_wakeup_counters_follow_discipline(self):
        targeted = small_system().run(iterations=3, metrics=True).metrics
        broadcast = (
            small_system()
            .run(iterations=3, metrics=True, wakeups="broadcast")
            .metrics
        )
        assert targeted["simulator"]["broadcast_wakeups"] == 0
        assert broadcast["simulator"]["wakeup_policy"] == "broadcast"
        assert broadcast["simulator"]["targeted_wakeups"] == 0
        # same simulation either way — only the kernel discipline differs
        assert targeted["run"]["cycles"] == broadcast["run"]["cycles"]

    def test_transport_fast_path_counter_present(self):
        document = small_system().run(iterations=3, metrics=True).metrics
        assert document["transport"]["fast_path_deliveries"] >= 0

    def test_blocked_cycles_attributed(self):
        document = small_system().run(iterations=4, metrics=True).metrics
        by_pe = {pe["name"]: pe for pe in document["pes"]}
        # B (20 cycles) outpaces A's sends: PE1 must block on its receive
        assert by_pe["PE1"]["blocked_cycles"] > 0
        assert any(
            "spi_recv" in task for task in by_pe["PE1"]["blocked_by_task"]
        )
        for pe in document["pes"]:
            assert (
                sum(pe["blocked_by_task"].values()) <= pe["blocked_cycles"]
            )

    @pytest.mark.parametrize(
        "transport", ["p2p", "shared_bus", "ordered_bus"]
    )
    def test_transport_section_all_flavours(self, transport):
        document = small_system(transport).run(
            iterations=3, metrics=True
        ).metrics
        section = document["transport"]
        assert section["messages"] == 3
        assert section["channels"]
        for channel in section["channels"]:
            assert channel["queueing_cycles"] >= channel["contention_cycles"]

    def test_ack_traffic_in_byte_split(self):
        document = small_system(policy="always_ubs").run(
            iterations=3, metrics=True
        ).metrics
        split = document["wire_byte_split"]
        assert split.get("ack", 0) > 0
        assert split["data"] > split["ack"]


class TestValidation:
    def test_rejects_wrong_schema(self):
        with pytest.raises(MetricsValidationError, match="schema"):
            validate_metrics({"schema": "bogus/9"})

    def test_rejects_missing_keys(self):
        with pytest.raises(MetricsValidationError, match="missing"):
            validate_metrics({"schema": METRICS_SCHEMA})

    def test_rejects_occupancy_over_bound(self):
        document = small_system().run(iterations=3, metrics=True).metrics
        channel = document["channels"][0]
        channel["occupancy_high_water_messages"] = (
            channel["physical_slots"] + 1
        )
        with pytest.raises(MetricsValidationError, match="high-water"):
            validate_metrics(document)

    def test_rejects_fan_out_without_collective_transfers(self):
        document = small_system().run(iterations=3, metrics=True).metrics
        document["transport"]["fan_out_deliveries"] = 2
        with pytest.raises(MetricsValidationError, match="collective"):
            validate_metrics(document)

    def test_rejects_fan_out_below_collective_messages(self):
        document = small_system().run(iterations=3, metrics=True).metrics
        document["transport"]["collective_messages"] = 4
        document["transport"]["fan_out_deliveries"] = 3
        with pytest.raises(MetricsValidationError, match="fan_out"):
            validate_metrics(document)

    def test_rejects_saved_bytes_over_logical_traffic(self):
        document = small_system().run(iterations=3, metrics=True).metrics
        logical = sum(
            c["data_bytes"] + c["header_bytes"] for c in document["channels"]
        )
        document["transport"]["collective_messages"] = 1
        document["transport"]["fan_out_deliveries"] = 2
        document["transport"]["wire_bytes_saved"] = logical + 1
        with pytest.raises(MetricsValidationError, match="wire_bytes_saved"):
            validate_metrics(document)


class TestPaperGraphs:
    def test_lpc_occupancy_within_static_bound(self, lpc_result):
        validate_metrics(lpc_result.metrics)
        for channel in lpc_result.metrics["channels"]:
            assert (
                channel["occupancy_high_water_messages"]
                <= channel["physical_slots"]
            )
            assert (
                channel["occupancy_high_water_bytes"]
                <= channel["capacity_bytes"]
            )

    def test_pf_occupancy_within_static_bound(self, pf_result):
        validate_metrics(pf_result.metrics)
        for channel in pf_result.metrics["channels"]:
            assert (
                channel["occupancy_high_water_messages"]
                <= channel["physical_slots"]
            )

    def test_lpc_channel_traffic_consistent(self, lpc_result):
        document = lpc_result.metrics
        data_messages = sum(
            c["data_messages"] for c in document["channels"]
        )
        assert data_messages == lpc_result.data_messages
        assert document["wire_byte_split"]["data"] == (
            lpc_result.payload_bytes + lpc_result.header_bytes
        )

    def test_summary_renders(self, lpc_result):
        from repro.analysis import render_metrics_summary

        text = render_metrics_summary(lpc_result.metrics)
        assert "processing elements:" in text
        assert "channels:" in text
        assert "MCM bound" in text

    def test_summary_collective_row_gated_on_traffic(self, lpc_result):
        from repro.analysis import render_metrics_summary

        document = lpc_result.metrics
        assert "collectives:" not in render_metrics_summary(document)
        document["transport"]["collective_messages"] = 3
        document["transport"]["fan_out_deliveries"] = 6
        document["transport"]["wire_bytes_saved"] = 48
        text = render_metrics_summary(document)
        assert (
            "collectives: 3 wire transfer(s) fanned out to 6 deliveries, "
            "48B saved by payload sharing" in text
        )
