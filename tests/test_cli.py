"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.clock_mhz == 100.0
        assert args.iterations == 5


class TestValidation:
    def test_bad_clock(self, capsys):
        assert main(["fig6", "--clock-mhz", "0"]) == 2
        assert "clock-mhz" in capsys.readouterr().err

    def test_bad_iterations(self, capsys):
        assert main(["fig6", "--iterations", "0"]) == 2


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SPI library" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "DSP48" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "n=1" in out and "n=2" in out

    def test_resync(self, capsys):
        assert main(["resync"]) == 0
        out = capsys.readouterr().out
        assert "fig. 3" in out and "fig. 5" in out

    def test_trace(self, capsys):
        assert main(["trace", "--iterations", "6"]) == 0
        out = capsys.readouterr().out
        assert "PE0" in out
        assert "MCM bound" in out

    def test_fig6_custom_clock(self, capsys):
        assert main(["fig6", "--iterations", "4", "--clock-mhz", "200"]) == 0
        out = capsys.readouterr().out
        assert "200 MHz" in out

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "SPI system" in out
        assert "self-timed schedule" in out
        assert "SPI_dynamic" in out  # the LPC channels


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "--app", "chain", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "processing elements:" in out
        assert "MCM bound" in out

    def test_run_lpc_writes_artefacts(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "run",
                    "--app", "lpc",
                    "--pes", "3",
                    "--iterations", "4",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path),
                ]
            )
            == 0
        )
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert all(
            "ph" in e and "ts" in e and "pid" in e
            for e in trace["traceEvents"]
        )
        metrics = json.loads(metrics_path.read_text())
        from repro.observability import validate_metrics

        validate_metrics(metrics)
        for channel in metrics["channels"]:
            assert (
                channel["occupancy_high_water_messages"]
                <= channel["physical_slots"]
            )

    def test_run_pf(self, capsys):
        assert main(
            ["run", "--app", "pf", "--pes", "2", "--iterations", "4"]
        ) == 0
        assert "channels:" in capsys.readouterr().out


class TestRunErrorPaths:
    def test_missing_app_name_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--pes", "2"])
        assert excinfo.value.code == 2
        assert "--app" in capsys.readouterr().err

    def test_unknown_app_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--app", "sonar"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_pes(self, capsys):
        assert main(["run", "--app", "lpc", "--pes", "0"]) == 2
        assert "--pes" in capsys.readouterr().err

    def test_negative_pes(self, capsys):
        assert main(["run", "--app", "chain", "--pes", "-3"]) == 2
        assert "--pes" in capsys.readouterr().err

    def test_bad_transport_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--app", "lpc", "--transport", "pigeon"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestConformCommand:
    def test_small_campaign_passes(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "report.json"
        code = main(
            [
                "conform",
                "--seeds", "3",
                "--quick",
                "--iterations", "2",
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "checked 3 seed(s)" in out
        assert "0 failing" in out
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro.conformance/1"
        assert report["bench"]["schema"] == "repro.bench/1"

    def test_replay_single_seed(self, capsys):
        assert main(["conform", "--replay", "5", "--quick"]) == 0
        assert "[5..5]" in capsys.readouterr().out

    def test_replay_conflicts_with_seeds(self, capsys):
        assert main(["conform", "--replay", "5", "--seeds", "10"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bad_shape_rejected(self, capsys):
        assert main(["conform", "--seeds", "1", "--shape", "bogus=3"]) == 2
        assert "unknown shape knob" in capsys.readouterr().err

    def test_bad_seed_count_rejected(self, capsys):
        assert main(["conform", "--seeds", "0"]) == 2
        assert "seeds" in capsys.readouterr().err

    def test_shape_override_applies(self, capsys):
        assert main(
            [
                "conform",
                "--seeds", "2",
                "--quick",
                "--iterations", "2",
                "--shape", "max_actors=3,dynamic_prob=0.0",
            ]
        ) == 0
        assert "checked 2 seed(s)" in capsys.readouterr().out


class TestCampaignCommand:
    def test_list_ops(self, capsys):
        assert main(["campaign", "--list-ops"]) == 0
        out = capsys.readouterr().out
        for name in ("conform.seed", "simulate.app", "bench.figure",
                     "ablate.resync"):
            assert name in out
        assert "required" in out

    def test_op_is_required(self, capsys):
        assert main(["campaign"]) == 2
        assert "--op is required" in capsys.readouterr().err

    def test_unknown_op_rejected(self, capsys):
        assert main(["campaign", "--op", "no.such.op"]) == 2
        assert "unknown operation" in capsys.readouterr().err

    def test_malformed_param_rejected(self, capsys):
        code = main(
            ["campaign", "--op", "simulate.app",
             "--param", "app=lpc", "--param", "pes=lots"]
        )
        assert code == 2
        assert "expected int" in capsys.readouterr().err

    def test_zero_workers_rejected(self, capsys):
        code = main(
            ["campaign", "--op", "conform.seed", "--seeds", "1",
             "--workers", "0"]
        )
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_conform_campaign_with_repeated_graphs(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "campaign.json"
        runs_dir = tmp_path / "runs"
        code = main(
            [
                "campaign",
                "--op", "conform.seed",
                "--seeds", "6",
                "--distinct", "2",
                "--quick",
                "--no-shrink",
                "--runs-dir", str(runs_dir),
                "--out", str(out_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "conform.seed x 6 unit(s)" in out
        assert "6 completed, 0 failed" in out
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro.campaign/1"
        # 2 distinct graphs x 3 repeats: the cache must carry the rest
        assert report["cache"]["hits"] > 0
        assert len(list(runs_dir.glob("*.json"))) == 6

    def test_generic_op_with_count(self, capsys):
        code = main(
            [
                "campaign",
                "--op", "simulate.app",
                "--param", "app=chain",
                "--param", "iterations=2",
                "--count", "2",
            ]
        )
        assert code == 0
        assert "simulate.app x 2 unit(s)" in capsys.readouterr().out


class TestConformExitCodes:
    """``repro conform`` is a CI gate: its exit code must track the
    campaign verdict exactly."""

    @staticmethod
    def _fake_report(failing_seeds):
        return {
            "schema": "repro.conformance/1",
            "checked": 1,
            "failing_seeds": failing_seeds,
            "failures": [
                {
                    "seed": seed,
                    "violations": [
                        {"oracle": "x", "run": "y", "detail": "boom"}
                    ],
                }
                for seed in failing_seeds
            ],
            "cases": [],
            "bench": {"wall_seconds": 0.1, "makespan_cycles": 7},
        }

    def test_failing_campaign_exits_nonzero(self, capsys, monkeypatch):
        import repro.conformance

        monkeypatch.setattr(
            repro.conformance,
            "run_campaign",
            lambda config, workers=1: self._fake_report([17]),
        )
        assert main(["conform", "--seeds", "1"]) == 1
        assert "1 failing" in capsys.readouterr().out

    def test_passing_campaign_exits_zero(self, capsys, monkeypatch):
        import repro.conformance

        monkeypatch.setattr(
            repro.conformance,
            "run_campaign",
            lambda config, workers=1: self._fake_report([]),
        )
        assert main(["conform", "--seeds", "1"]) == 0
        assert "0 failing" in capsys.readouterr().out
