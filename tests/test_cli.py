"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.clock_mhz == 100.0
        assert args.iterations == 5


class TestValidation:
    def test_bad_clock(self, capsys):
        assert main(["fig6", "--clock-mhz", "0"]) == 2
        assert "clock-mhz" in capsys.readouterr().err

    def test_bad_iterations(self, capsys):
        assert main(["fig6", "--iterations", "0"]) == 2


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SPI library" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "DSP48" in out

    def test_fig7_small(self, capsys):
        assert main(["fig7", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "n=1" in out and "n=2" in out

    def test_resync(self, capsys):
        assert main(["resync"]) == 0
        out = capsys.readouterr().out
        assert "fig. 3" in out and "fig. 5" in out

    def test_trace(self, capsys):
        assert main(["trace", "--iterations", "6"]) == 0
        out = capsys.readouterr().out
        assert "PE0" in out
        assert "MCM bound" in out

    def test_fig6_custom_clock(self, capsys):
        assert main(["fig6", "--iterations", "4", "--clock-mhz", "200"]) == 0
        out = capsys.readouterr().out
        assert "200 MHz" in out

    def test_describe(self, capsys):
        assert main(["describe"]) == 0
        out = capsys.readouterr().out
        assert "SPI system" in out
        assert "self-timed schedule" in out
        assert "SPI_dynamic" in out  # the LPC channels


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "--app", "chain", "--iterations", "4"]) == 0
        out = capsys.readouterr().out
        assert "processing elements:" in out
        assert "MCM bound" in out

    def test_run_lpc_writes_artefacts(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "run",
                    "--app", "lpc",
                    "--pes", "3",
                    "--iterations", "4",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path),
                ]
            )
            == 0
        )
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert all(
            "ph" in e and "ts" in e and "pid" in e
            for e in trace["traceEvents"]
        )
        metrics = json.loads(metrics_path.read_text())
        from repro.observability import validate_metrics

        validate_metrics(metrics)
        for channel in metrics["channels"]:
            assert (
                channel["occupancy_high_water_messages"]
                <= channel["physical_slots"]
            )

    def test_run_pf(self, capsys):
        assert main(
            ["run", "--app", "pf", "--pes", "2", "--iterations", "4"]
        ) == 0
        assert "channels:" in capsys.readouterr().out
