"""Property tests for steady-state period detection.

Two invariants tie the detected period back to the dataflow theory:

* **repetitions-vector consistency** — one sequencer iteration is one
  pass over the PE's firing script (the PASS per-PE order, every actor
  fired ``q(v)`` times) plus the SPI_initialize slot, so the per-period
  firing delta on every PE must be exactly
  ``P * (len(script[pe]) + 1)``.  The warp replays these deltas, so a
  wrong multiple here would corrupt extrapolated firing counts.
* **MCM lower bound** — the observed steady-state period per iteration
  can never beat the maximum cycle mean of the self-timed graph; a
  detected period below it would mean the hash matched states that are
  not actually equivalent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conformance import GraphShape, build_case, generate_spec
from repro.spi import SpiSystem

#: static-rate graphs: undeclared dynamic actors never arm detection
SHAPE = GraphShape(dynamic_prob=0.0)
ITERATIONS = 14


def _detected_run(seed: int):
    case = build_case(generate_spec(seed, SHAPE))
    system = SpiSystem.compile(case.graph, case.partition)
    result = system.run(
        iterations=ITERATIONS, max_cycles=10_000_000, steady_state="auto"
    )
    return system, result


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_period_firings_are_repetition_vector_multiples(seed):
    system, result = _detected_run(seed)
    report = result.steady_state
    if report is None or report.detected_at is None:
        return
    period = report.period_iterations
    script = system.schedule.firing_script()
    for pe_index, entries in script.items():
        if not entries:
            continue
        delta = report.period_delta.get((f"pe:{pe_index}", "firings"), 0)
        # + 1: the SpiInitTask slot cycles with the program (a no-op
        # after iteration 0, but still a counted firing)
        assert delta == period * (len(entries) + 1), (
            f"seed {seed} PE{pe_index}: {delta} firings over "
            f"{period} iteration(s) vs {len(entries)} script entries"
        )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_detected_period_respects_mcm_bound(seed):
    system, result = _detected_run(seed)
    report = result.steady_state
    if report is None or report.detected_at is None:
        return
    per_iteration = report.period_cycles / report.period_iterations
    mcm = system.estimated_iteration_period_cycles()
    assert per_iteration >= mcm - 1e-6, (
        f"seed {seed}: detected period {per_iteration:.3f} cycles/iter "
        f"beats the MCM bound {mcm:.3f}"
    )
