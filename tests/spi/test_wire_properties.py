"""Property tests on the wire formats and flow-control state machines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spi import (
    ChannelFlowControl,
    DYNAMIC_HEADER_BYTES,
    Protocol,
    ProtocolConfig,
    STATIC_HEADER_BYTES,
    make_ack_message,
    make_data_message,
)


class TestMessageProperties:
    @given(
        edge_id=st.integers(0, 2**16),
        payload=st.lists(st.integers(), max_size=64),
        dynamic=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_wire_size_decomposition(self, edge_id, payload, dynamic):
        if not dynamic and not payload:
            payload = [0]  # static messages always carry their fixed rate
        nbytes = 4 * len(payload)
        message = make_data_message(edge_id, payload, nbytes, dynamic)
        expected_header = (
            DYNAMIC_HEADER_BYTES if dynamic else STATIC_HEADER_BYTES
        )
        assert message.header_bytes == expected_header
        assert message.wire_bytes == expected_header + nbytes
        assert message.payload == tuple(payload)
        if dynamic:
            assert message.size_field == len(payload)

    @given(edge_id=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_ack_is_constant_size(self, edge_id):
        ack = make_ack_message(edge_id)
        assert ack.wire_bytes == 4
        assert ack.edge_id == edge_id


class TestFlowControlStateMachine:
    @given(
        window=st.integers(1, 8),
        operations=st.lists(st.booleans(), max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_credits_never_escape_bounds(self, window, operations):
        """Drive the UBS credit machine with a random legal trace: the
        credit count stays within [0, window] and the in-flight count
        equals sends - acks at every step."""
        flow = ChannelFlowControl(
            ProtocolConfig(Protocol.UBS, window, acks_enabled=True)
        )
        in_flight = 0
        for wants_send in operations:
            if wants_send:
                if flow.can_send():
                    flow.on_send()
                    in_flight += 1
            else:
                if in_flight > 0:
                    flow.on_ack()
                    in_flight -= 1
            assert 0 <= flow.credits <= window
            assert in_flight == window - flow.credits
            assert flow.can_send() == (flow.credits > 0)

    @given(window=st.integers(1, 8), sends=st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_bbs_unconditional(self, window, sends):
        flow = ChannelFlowControl(
            ProtocolConfig(Protocol.BBS, window, acks_enabled=False)
        )
        for _ in range(sends):
            assert flow.can_send()
            flow.on_send()
        assert flow.sends == sends
