"""SPI runtime tests for collective connections.

Covers the lowering semantics (one send actor per fan-out collective,
per-branch delivery), the transport counters
(``collective_messages`` / ``fan_out_deliveries`` / ``wire_bytes_saved``)
and the degenerate A/B guarantee: a 1-consumer broadcast and a
1-producer gather are bit-identical to a plain FIFO edge.
"""

import pytest

from repro.dataflow import DataflowGraph
from repro.mapping import Partition
from repro.observability.exporters import validate_metrics
from repro.spi import SpiConfig, SpiSystem


def _run(graph, assignment, transport="p2p", iterations=4):
    partition = Partition.manual(graph, assignment)
    system = SpiSystem.compile(graph, partition, SpiConfig(transport=transport))
    return system.run(iterations=iterations, metrics=True)


def _broadcast_graph(collected, n_sinks=2, rate=4):
    graph = DataflowGraph("bcast")
    src = graph.actor(
        "src", kernel=lambda k, ins: {"o": [k * 10 + j for j in range(rate)]},
        cycles=10,
    )
    src.add_output("o", rate=rate)
    sinks = []
    for j in range(n_sinks):

        def sink(k, ins, j=j):
            collected[j].extend(ins["i"])
            return {}

        snk = graph.actor(f"snk{j}", kernel=sink, cycles=5)
        snk.add_input("i", rate=rate)
        sinks.append(snk)
    graph.add_broadcast("src.o", [f"snk{j}.i" for j in range(n_sinks)])
    return graph


class TestSemantics:
    def test_broadcast_delivers_full_copy_to_every_consumer(self):
        collected = {0: [], 1: [], 2: []}
        graph = _broadcast_graph(collected, n_sinks=3, rate=2)
        _run(graph, {"src": 0, "snk0": 1, "snk1": 2, "snk2": 0}, iterations=3)
        expected = [0, 1, 10, 11, 20, 21]
        assert collected[0] == expected
        assert collected[1] == expected
        assert collected[2] == expected

    def test_scatter_splits_in_branch_order(self):
        collected = {0: [], 1: [], 2: []}
        graph = DataflowGraph("scat")
        src = graph.actor(
            "src", kernel=lambda k, ins: {"o": list(range(6))}, cycles=10
        )
        src.add_output("o", rate=6)
        for j in range(3):

            def sink(k, ins, j=j):
                collected[j].extend(ins["i"])
                return {}

            snk = graph.actor(f"snk{j}", kernel=sink, cycles=5)
            snk.add_input("i", rate=2)
        graph.add_scatter("src.o", ["snk0.i", "snk1.i", "snk2.i"])
        _run(graph, {"src": 0, "snk0": 1, "snk1": 2, "snk2": 0}, iterations=2)
        assert collected[0] == [0, 1, 0, 1]
        assert collected[1] == [2, 3, 2, 3]
        assert collected[2] == [4, 5, 4, 5]

    def test_gather_concatenates_in_branch_order(self):
        collected = []
        graph = DataflowGraph("gath")
        for j in range(3):
            src = graph.actor(
                f"src{j}",
                kernel=(lambda j: lambda k, ins: {"o": [j, j]})(j),
                cycles=5,
            )
            src.add_output("o", rate=2)
        snk = graph.actor(
            "snk",
            kernel=lambda k, ins: collected.append(list(ins["i"])) or {},
            cycles=10,
        )
        snk.add_input("i", rate=6)
        graph.add_gather(["src0.o", "src1.o", "src2.o"], "snk.i")
        _run(graph, {"src0": 0, "src1": 1, "src2": 2, "snk": 0}, iterations=3)
        assert collected == [[0, 0, 1, 1, 2, 2]] * 3

    def test_reduce_combines_elementwise(self):
        collected = []
        graph = DataflowGraph("red")
        for j in range(3):
            src = graph.actor(
                f"src{j}",
                kernel=(lambda j: lambda k, ins: {"o": [float(j + 1)]})(j),
                cycles=5,
            )
            src.add_output("o", rate=1, token_bytes=8)
        snk = graph.actor(
            "snk",
            kernel=lambda k, ins: collected.append(ins["i"][0]) or {},
            cycles=10,
        )
        snk.add_input("i", rate=1, token_bytes=8)
        graph.add_reduce(["src0.o", "src1.o", "src2.o"], "snk.i")
        _run(graph, {"src0": 0, "src1": 1, "src2": 2, "snk": 0}, iterations=2)
        assert collected == [6.0, 6.0]


class TestCounters:
    def test_same_link_fan_out_shares_the_payload(self):
        """Two consumers on the same remote PE: one wire transfer per
        firing, two deliveries, and the second copy's bytes saved."""
        collected = {0: [], 1: []}
        graph = _broadcast_graph(collected, n_sinks=2, rate=4)
        result = _run(graph, {"src": 0, "snk0": 1, "snk1": 1}, iterations=4)
        assert result.collective_messages == 4
        assert result.fan_out_deliveries == 8
        assert result.wire_bytes_saved > 0
        assert collected[0] == collected[1]

    def test_all_local_broadcast_sends_nothing(self):
        collected = {0: [], 1: []}
        graph = _broadcast_graph(collected, n_sinks=2)
        result = _run(graph, {"src": 0, "snk0": 0, "snk1": 0}, iterations=3)
        assert result.data_messages == 0
        assert result.collective_messages == 0
        assert result.wire_bytes_saved == 0
        assert collected[0] == collected[1]

    @pytest.mark.parametrize("transport", ["p2p", "shared_bus", "ordered_bus"])
    def test_counters_consistent_on_every_transport(self, transport):
        collected = {0: [], 1: []}
        graph = _broadcast_graph(collected, n_sinks=2)
        result = _run(
            graph, {"src": 0, "snk0": 1, "snk1": 1},
            transport=transport, iterations=3,
        )
        assert result.collective_messages > 0
        assert result.fan_out_deliveries >= result.collective_messages
        assert result.wire_bytes_saved > 0
        assert collected[0] == collected[1]

    def test_metrics_document_validates(self):
        collected = {0: [], 1: []}
        graph = _broadcast_graph(collected, n_sinks=2)
        result = _run(graph, {"src": 0, "snk0": 1, "snk1": 1}, iterations=3)
        assert result.metrics is not None
        validate_metrics(result.metrics)
        transport = result.metrics["transport"]
        assert transport["collective_messages"] == result.collective_messages
        assert transport["fan_out_deliveries"] == result.fan_out_deliveries
        assert transport["wire_bytes_saved"] == result.wire_bytes_saved


def _degenerate_pair(make_edge_legacy, make_edge_collective):
    """Run the same 2-actor cross-PE chain with a plain FIFO edge and
    with the degenerate collective; return both results."""

    def build(make_edge):
        graph = DataflowGraph("deg")
        src = graph.actor(
            "src", kernel=lambda k, ins: {"o": [k, k + 1]}, cycles=10
        )
        src.add_output("o", rate=2)
        snk = graph.actor("snk", kernel=lambda k, ins: {}, cycles=5)
        snk.add_input("i", rate=2)
        make_edge(graph, src, snk)
        return _run(graph, {"src": 0, "snk": 1}, iterations=5)

    return build(make_edge_legacy), build(make_edge_collective)


class TestDegenerateAB:
    """A 1-branch collective must be bit-identical to the FIFO edge it
    degenerates to — same schedule, traffic and buffer bounds."""

    def _assert_identical(self, fifo, degenerate):
        assert degenerate.cycles == fifo.cycles
        assert degenerate.iteration_period_cycles == (
            fifo.iteration_period_cycles
        )
        assert degenerate.data_messages == fifo.data_messages
        assert degenerate.ack_messages == fifo.ack_messages
        assert degenerate.wire_bytes == fifo.wire_bytes
        assert degenerate.collective_messages == 0
        assert degenerate.fan_out_deliveries == 0
        assert degenerate.wire_bytes_saved == 0

    def test_one_consumer_broadcast_matches_fifo(self):
        fifo, degenerate = _degenerate_pair(
            lambda g, a, b: g.connect(a.port("o"), b.port("i")),
            lambda g, a, b: g.add_broadcast("src.o", ["snk.i"]),
        )
        self._assert_identical(fifo, degenerate)

    def test_one_producer_gather_matches_fifo(self):
        fifo, degenerate = _degenerate_pair(
            lambda g, a, b: g.connect(a.port("o"), b.port("i")),
            lambda g, a, b: g.add_gather(["src.o"], "snk.i"),
        )
        self._assert_identical(fifo, degenerate)

    def test_degenerate_channel_plans_match(self):
        def build(degenerate):
            graph = DataflowGraph("deg")
            src = graph.actor("src", cycles=10)
            src.add_output("o", rate=2)
            snk = graph.actor("snk", cycles=5)
            snk.add_input("i", rate=2)
            if degenerate:
                graph.add_broadcast("src.o", ["snk.i"], name="e")
            else:
                graph.connect(src.port("o"), snk.port("i"), name="e")
            partition = Partition.manual(graph, {"src": 0, "snk": 1})
            return SpiSystem.compile(graph, partition)

        # the member edge is named "e[0]" vs the FIFO's "e" — everything
        # the plan decides (protocol, bound, route) must agree
        (plain,) = build(False).channel_plans.values()
        (degen,) = build(True).channel_plans.values()
        assert degen.protocol == plain.protocol
        assert degen.capacity_messages == plain.capacity_messages
        assert degen.acks_enabled == plain.acks_enabled
        assert (degen.src_pe, degen.dst_pe) == (plain.src_pe, plain.dst_pe)
