"""Unit tests for BBS/UBS flow control (paper §4)."""

import pytest

from repro.spi import ChannelFlowControl, Protocol, ProtocolConfig


class TestProtocolConfig:
    def test_bbs_never_acks(self):
        with pytest.raises(ValueError, match="BBS never"):
            ProtocolConfig(Protocol.BBS, capacity_tokens=4, acks_enabled=True)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ProtocolConfig(Protocol.UBS, capacity_tokens=0, acks_enabled=True)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            ProtocolConfig("SPI_XXX", capacity_tokens=1, acks_enabled=False)


class TestBbsFlow:
    def test_bbs_never_blocks(self):
        flow = ChannelFlowControl(
            ProtocolConfig(Protocol.BBS, capacity_tokens=2, acks_enabled=False)
        )
        for _ in range(100):
            assert flow.can_send()
            flow.on_send()
        assert flow.credits is None
        assert flow.sends == 100


class TestUbsFlow:
    def flow(self, window=3):
        return ChannelFlowControl(
            ProtocolConfig(Protocol.UBS, capacity_tokens=window,
                           acks_enabled=True)
        )

    def test_window_blocks_after_exhaustion(self):
        flow = self.flow(window=3)
        for _ in range(3):
            assert flow.can_send()
            flow.on_send()
        assert not flow.can_send()

    def test_ack_restores_credit(self):
        flow = self.flow(window=1)
        flow.on_send()
        assert not flow.can_send()
        flow.on_ack()
        assert flow.can_send()
        assert flow.acks_received == 1

    def test_send_without_credit_is_violation(self):
        flow = self.flow(window=1)
        flow.on_send()
        with pytest.raises(RuntimeError, match="zero credits"):
            flow.on_send()

    def test_spurious_ack_is_violation(self):
        flow = self.flow(window=2)
        with pytest.raises(RuntimeError, match="more acks"):
            flow.on_ack()

    def test_ack_free_ubs_never_blocks(self):
        """UBS whose ack edge was proven redundant runs without credits
        (the resynchronization optimisation)."""
        flow = ChannelFlowControl(
            ProtocolConfig(Protocol.UBS, capacity_tokens=2,
                           acks_enabled=False)
        )
        for _ in range(10):
            assert flow.can_send()
            flow.on_send()
        assert flow.credits is None
