"""Unit tests for SPI actor insertion (paper §2)."""

import pytest

from repro.dataflow import GraphError, build_pass, repetitions_vector, vts_convert
from repro.mapping import Partition
from repro.spi import insert_spi_actors


class TestInsertion:
    def test_pair_inserted_per_crossing_edge(self, chain_graph, two_pe_partition):
        insertion = insert_spi_actors(chain_graph, two_pe_partition)
        # 3 original actors + 2 pairs of SPI actors
        assert len(insertion.graph) == 3 + 4
        assert len(insertion.channels) == 2

    def test_local_edge_untouched(self, chain_graph):
        partition = Partition.manual(chain_graph, {"A": 0, "B": 0, "C": 1})
        insertion = insert_spi_actors(chain_graph, partition)
        assert len(insertion.channels) == 1
        local = insertion.graph.edge_between("A", "B")
        assert local.delay == 0

    def test_single_pe_inserts_nothing(self, chain_graph):
        partition = Partition.single_processor(chain_graph)
        insertion = insert_spi_actors(chain_graph, partition)
        assert not insertion.channels
        assert len(insertion.graph) == 3

    def test_spi_actors_inherit_endpoint_pes(self, chain_graph, two_pe_partition):
        insertion = insert_spi_actors(chain_graph, two_pe_partition)
        for origin, (ipc_edge, pair, _) in insertion.channels.items():
            edge = chain_graph.edges[0] if origin.startswith("A") else chain_graph.edges[1]
            src_pe = two_pe_partition.assignment[edge.src_actor.name]
            dst_pe = two_pe_partition.assignment[edge.snk_actor.name]
            assert insertion.partition.assignment[pair.send] == src_pe
            assert insertion.partition.assignment[pair.recv] == dst_pe

    def test_inserted_graph_stays_consistent(self, chain_graph, two_pe_partition):
        insertion = insert_spi_actors(chain_graph, two_pe_partition)
        reps = repetitions_vector(insertion.graph)
        assert all(count == 1 for count in reps.values())
        build_pass(insertion.graph)

    def test_delay_moves_to_consumer_side(self, cyclic_graph):
        partition = Partition.manual(cyclic_graph, {"A": 0, "B": 1})
        insertion = insert_spi_actors(cyclic_graph, partition)
        (_, pair, _) = insertion.channels["B.o->A.i"]
        delivered = insertion.graph.edge_between(pair.recv, "A")
        assert delivered.delay == 1
        ipc = insertion.channels["B.o->A.i"][0]
        assert ipc.delay == 0

    def test_initial_token_values_preserved(self, cyclic_graph):
        cyclic_graph.edge_between("B", "A").set_initial_tokens([99])
        partition = Partition.manual(cyclic_graph, {"A": 0, "B": 1})
        insertion = insert_spi_actors(cyclic_graph, partition)
        (_, pair, _) = insertion.channels["B.o->A.i"]
        delivered = insertion.graph.edge_between(pair.recv, "A")
        assert delivered.initial_tokens == [99]

    def test_dynamic_flag_from_conversion(self, fig1_graph):
        conversion = vts_convert(fig1_graph)
        partition = Partition(conversion.graph, 2, {"A": 0, "B": 1})
        insertion = insert_spi_actors(
            conversion.graph, partition, conversion=conversion
        )
        (_, _, dynamic) = next(iter(insertion.channels.values()))
        assert dynamic

    def test_dynamic_graph_rejected(self, fig1_graph):
        partition = Partition(fig1_graph, 2, {"A": 0, "B": 1})
        with pytest.raises(GraphError, match="vts_convert"):
            insert_spi_actors(fig1_graph, partition)

    def test_multirate_edge_rates_preserved(self, multirate_graph):
        partition = Partition.manual(multirate_graph, {"A": 0, "B": 1, "C": 1})
        insertion = insert_spi_actors(multirate_graph, partition)
        (ipc_edge, pair, _) = insertion.channels["A.o->B.i"]
        # send fires with the producer's rate (2 tokens per message)
        assert ipc_edge.source.rate == 2
        reps = repetitions_vector(insertion.graph)
        assert reps[pair.send] == reps["A"] == 3
        assert reps[pair.recv] == reps["A"] == 3

    def test_spi_actor_name_detection(self, chain_graph, two_pe_partition):
        insertion = insert_spi_actors(chain_graph, two_pe_partition)
        names = insertion.spi_actor_names()
        assert len(names) == 4
        assert all(insertion.is_spi_actor(n) for n in names)
        assert not insertion.is_spi_actor("A")

    def test_send_cycles_scale_with_payload(self, multirate_graph):
        partition = Partition.manual(multirate_graph, {"A": 0, "B": 1, "C": 1})
        insertion = insert_spi_actors(multirate_graph, partition)
        (_, pair, _) = insertion.channels["A.o->B.i"]
        send = insertion.graph.get_actor(pair.send)
        # 2 tokens x 4 bytes = 2 words + 2 overhead cycles
        assert send.execution_cycles(0) == 4
