"""Unit tests for run-time SPI actors and local FIFOs."""

import pytest

from repro.dataflow import DataflowGraph, PackedToken
from repro.spi.actors import (
    INIT_CYCLES,
    LocalFifo,
    SpiInitTask,
    payload_nbytes,
)


def make_edge(delay=0, initial=None):
    graph = DataflowGraph("f")
    a = graph.actor("A")
    b = graph.actor("B")
    a.add_output("o")
    b.add_input("i")
    edge = graph.connect((a, "o"), (b, "i"), delay=delay)
    if initial is not None:
        edge.set_initial_tokens(initial)
    return edge


class TestLocalFifo:
    def test_initial_tokens_from_delay(self):
        fifo = LocalFifo(make_edge(delay=3))
        assert len(fifo) == 3
        assert fifo.pop(3) == [None, None, None]

    def test_initial_values_used_when_present(self):
        fifo = LocalFifo(make_edge(delay=2, initial=[7, 8]))
        assert fifo.pop(2) == [7, 8]

    def test_fifo_order_and_high_water(self):
        fifo = LocalFifo(make_edge())
        fifo.push([1, 2])
        fifo.push([3])
        assert fifo.high_water == 3
        assert fifo.pop(2) == [1, 2]
        fifo.push([4])
        assert fifo.pop(2) == [3, 4]
        assert fifo.high_water == 3

    def test_underflow_raises(self):
        fifo = LocalFifo(make_edge())
        fifo.push([1])
        with pytest.raises(RuntimeError, match="popping"):
            fifo.pop(2)


class TestPayloadBytes:
    def test_plain_tokens_use_default(self):
        assert payload_nbytes([1, 2, 3], default_token_bytes=4) == 12

    def test_packed_tokens_know_their_size(self):
        token = PackedToken.pack([1, 2, 3, 4, 5], raw_token_bytes=2)
        assert payload_nbytes([token], default_token_bytes=99) == 10

    def test_mixed(self):
        token = PackedToken.pack([1], raw_token_bytes=8)
        assert payload_nbytes([token, 0], default_token_bytes=4) == 12

    def test_empty(self):
        assert payload_nbytes([], default_token_bytes=4) == 0


class TestSpiInit:
    def test_charges_once(self):
        task = SpiInitTask(0)
        assert task.ready(0)
        assert task.start(0) == INIT_CYCLES
        task.finish(INIT_CYCLES)
        assert task.start(INIT_CYCLES) == 0
