"""Unit tests for SPI module resource costs."""


from repro.spi.resources import (
    channel_cost,
    init_module_cost,
    recv_module_cost,
    send_module_cost,
)


class TestModuleCosts:
    def test_spi_uses_no_dsp48(self):
        """Structural invariant matching both paper tables: the SPI
        library's DSP48 column is zero."""
        assert init_module_cost().dsp48 == 0
        assert send_module_cost(dynamic=True, uses_acks=True).dsp48 == 0
        assert recv_module_cost(dynamic=True, buffer_bytes=8192).dsp48 == 0

    def test_dynamic_costs_more_than_static(self):
        static = send_module_cost(dynamic=False)
        dynamic = send_module_cost(dynamic=True)
        assert dynamic.slice_ffs > static.slice_ffs
        assert dynamic.lut4 > static.lut4

    def test_acks_cost_extra(self):
        plain = send_module_cost(dynamic=False, uses_acks=False)
        acked = send_module_cost(dynamic=False, uses_acks=True)
        assert acked.slice_ffs > plain.slice_ffs

    def test_receive_buffers_always_bram(self):
        """The dual-ported receive buffer maps to BRAM even when small
        (this is the Table-1 BRAM asymmetry), and scales with depth."""
        small = recv_module_cost(dynamic=False, buffer_bytes=64)
        large = recv_module_cost(dynamic=False, buffer_bytes=16384)
        assert small.bram == 1
        assert large.bram == 8

    def test_channel_cost_is_send_plus_recv(self):
        total = channel_cost(dynamic=True, buffer_bytes=1024, uses_acks=True)
        parts = send_module_cost(True, True) + recv_module_cost(
            True, 1024, True
        )
        assert total == parts

    def test_init_is_tiny(self):
        init = init_module_cost()
        assert init.slices < 50
        assert init.bram == 0
