"""Unit tests for SPI wire formats (paper §5.1)."""

import pytest

from repro.spi import (
    ACK_BYTES,
    DYNAMIC_HEADER_BYTES,
    STATIC_HEADER_BYTES,
    Message,
    MessageKind,
    make_ack_message,
    make_data_message,
)


class TestHeaders:
    def test_static_header_is_edge_id_only(self):
        """SPI_static: 'the ID of the interprocessor edge only'."""
        message = make_data_message(7, [1, 2], payload_bytes=8, dynamic=False)
        assert message.header_bytes == STATIC_HEADER_BYTES == 4
        assert message.size_field is None
        assert not message.is_dynamic

    def test_dynamic_header_adds_size(self):
        """SPI_dynamic: 'also contains the message size'."""
        message = make_data_message(7, [1, 2, 3], payload_bytes=6, dynamic=True)
        assert message.header_bytes == DYNAMIC_HEADER_BYTES == 8
        assert message.size_field == 3
        assert message.is_dynamic

    def test_ack_is_one_word(self):
        ack = make_ack_message(9)
        assert ack.kind == MessageKind.ACK
        assert ack.wire_bytes == ACK_BYTES == 4
        assert not ack.payload

    def test_wire_bytes_is_header_plus_payload(self):
        message = make_data_message(1, list(range(10)), 40, dynamic=True)
        assert message.wire_bytes == 8 + 40

    def test_dynamic_beats_mpi_envelope(self):
        """Both SPI headers are smaller than a 6-word MPI envelope."""
        from repro.mpi import MpiConfig

        envelope = MpiConfig().envelope_bytes
        assert DYNAMIC_HEADER_BYTES < envelope
        assert STATIC_HEADER_BYTES < envelope


class TestValidation:
    def test_ack_with_payload_rejected(self):
        with pytest.raises(ValueError, match="no payload"):
            Message(kind=MessageKind.ACK, edge_id=1, payload=(1,))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Message(kind="control", edge_id=1)

    def test_negative_payload_bytes_rejected(self):
        with pytest.raises(ValueError):
            Message(kind=MessageKind.DATA, edge_id=1, payload_bytes=-4)

    def test_messages_are_frozen(self):
        message = make_data_message(1, [1], 4, dynamic=False)
        with pytest.raises(AttributeError):
            message.edge_id = 2

    def test_empty_dynamic_message_allowed(self):
        """A zero-length exchange (PF intra-resampling with no excess
        particles) is a legal dynamic message: size field 0."""
        message = make_data_message(3, [], payload_bytes=0, dynamic=True)
        assert message.size_field == 0
        assert message.wire_bytes == DYNAMIC_HEADER_BYTES
