"""Unit tests for SPI channel run-time state."""

import pytest

from repro.dataflow import DataflowGraph
from repro.platform import BufferOverflowError
from repro.spi import (
    Protocol,
    ProtocolConfig,
    SpiChannel,
    make_ack_message,
    make_data_message,
)


def make_channel(protocol=Protocol.BBS, capacity=2, acks=False,
                 recv_capacity_bytes=64, dynamic=False):
    graph = DataflowGraph("ch")
    a = graph.actor("A")
    b = graph.actor("B")
    a.add_output("o")
    b.add_input("i")
    edge = graph.connect((a, "o"), (b, "i"))
    return SpiChannel(
        edge=edge,
        src_pe=0,
        dst_pe=1,
        config=ProtocolConfig(protocol, capacity, acks),
        dynamic=dynamic,
        token_bytes=4,
        recv_capacity_bytes=recv_capacity_bytes,
    )


class TestDelivery:
    def test_data_message_queues_and_accounts(self):
        channel = make_channel()
        message = make_data_message(channel.edge.edge_id, [1, 2], 8, False)
        channel.deliver(message)
        assert channel.receive_ready()
        assert channel.recv_buffer.occupancy_bytes == 8
        assert channel.stats.data_messages == 1
        assert channel.stats.header_bytes == 4

    def test_accept_frees_buffer_and_returns_message(self):
        channel = make_channel()
        message = make_data_message(channel.edge.edge_id, [5], 4, False)
        channel.deliver(message)
        accepted = channel.accept()
        assert accepted.payload == (5,)
        assert channel.recv_buffer.occupancy_bytes == 0
        assert not channel.receive_ready()

    def test_accept_without_message_is_error(self):
        channel = make_channel()
        with pytest.raises(RuntimeError, match="without a message"):
            channel.accept()

    def test_fifo_order(self):
        channel = make_channel(recv_capacity_bytes=1024)
        for value in range(5):
            channel.deliver(
                make_data_message(channel.edge.edge_id, [value], 4, False)
            )
        received = [channel.accept().payload[0] for _ in range(5)]
        assert received == [0, 1, 2, 3, 4]

    def test_overflow_detected(self):
        channel = make_channel(recv_capacity_bytes=8)
        channel.deliver(make_data_message(1, [1, 2], 8, False))
        with pytest.raises(BufferOverflowError):
            channel.deliver(make_data_message(1, [3], 4, False))

    def test_ack_updates_flow_not_buffer(self):
        channel = make_channel(
            protocol=Protocol.UBS, capacity=2, acks=True
        )
        channel.on_send()
        channel.deliver(make_ack_message(channel.edge.edge_id))
        assert channel.stats.ack_messages == 1
        assert channel.recv_buffer.occupancy_bytes == 0
        assert channel.flow.can_send()


class TestStats:
    def test_overhead_bytes(self):
        channel = make_channel(protocol=Protocol.UBS, capacity=4, acks=True)
        channel.on_send()
        channel.deliver(make_data_message(1, [1], 4, False))
        channel.deliver(make_ack_message(1))
        assert channel.stats.overhead_bytes == 4 + 4  # header + ack
        assert channel.stats.total_wire_bytes == 12
        assert channel.stats.total_messages == 2

    def test_same_pe_rejected(self):
        graph = DataflowGraph("x")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o")
        b.add_input("i")
        edge = graph.connect((a, "o"), (b, "i"))
        with pytest.raises(ValueError, match="distinct"):
            SpiChannel(
                edge=edge, src_pe=1, dst_pe=1,
                config=ProtocolConfig(Protocol.BBS, 1, False),
                dynamic=False, token_bytes=4, recv_capacity_bytes=16,
            )
