"""Multirate applications through the full SPI stack, functionally."""

import pytest

from repro.dataflow import DataflowGraph, repetitions_vector
from repro.mapping import Partition
from repro.spi import SpiSystem


def decimator_graph(collect):
    """src (1) -> (4)dec(1) -> (1)snk: a 4:1 decimator, q = (4,1,1)."""
    graph = DataflowGraph("decim")

    def src(k, inputs):
        return {"o": [k]}

    def decimate(k, inputs):
        return {"o": [sum(inputs["i"]) / 4.0]}

    def sink(k, inputs):
        collect.append(inputs["i"][0])
        return {}

    a = graph.actor("src", kernel=src, cycles=5)
    b = graph.actor("dec", kernel=decimate, cycles=12)
    c = graph.actor("snk", kernel=sink, cycles=3)
    a.add_output("o", rate=1)
    b.add_input("i", rate=4)
    b.add_output("o", rate=1)
    c.add_input("i", rate=1)
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    return graph


def interpolator_graph(collect):
    """src (1) -> (1)up(3) -> (3)snk: a 1:3 interpolator, q = (1,1,1)...
    actually q = (3,3,1)? No: src rate 1 to up rate 1 (q equal), up
    produces 3 consumed 3 by snk -> q = (1,1,1)."""
    graph = DataflowGraph("interp")

    def src(k, inputs):
        return {"o": [float(k)]}

    def upsample(k, inputs):
        value = inputs["i"][0]
        return {"o": [value, value, value]}

    def sink(k, inputs):
        collect.extend(inputs["i"])
        return {}

    a = graph.actor("src", kernel=src, cycles=4)
    b = graph.actor("up", kernel=upsample, cycles=6)
    c = graph.actor("snk", kernel=sink, cycles=2)
    a.add_output("o", rate=1)
    b.add_input("i", rate=1)
    b.add_output("o", rate=3)
    c.add_input("i", rate=3)
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    return graph


class TestDecimator:
    def test_repetitions(self):
        graph = decimator_graph([])
        assert repetitions_vector(graph) == {"src": 4, "dec": 1, "snk": 1}

    @pytest.mark.parametrize(
        "assignment",
        [
            {"src": 0, "dec": 0, "snk": 0},
            {"src": 0, "dec": 1, "snk": 0},
            {"src": 0, "dec": 1, "snk": 2},
        ],
    )
    def test_functional_across_mappings(self, assignment):
        collect = []
        graph = decimator_graph(collect)
        n_pes = max(assignment.values()) + 1
        partition = Partition(graph, n_pes, assignment)
        SpiSystem.compile(graph, partition).run(iterations=3)
        # iteration k averages samples 4k..4k+3
        assert collect == [1.5, 5.5, 9.5]

    def test_multirate_message_granularity(self):
        """The src->dec channel moves 1 token per message, 4 messages
        per iteration (send fires with the producer)."""
        collect = []
        graph = decimator_graph(collect)
        partition = Partition(graph, 2, {"src": 0, "dec": 1, "snk": 1})
        system = SpiSystem.compile(graph, partition)
        result = system.run(iterations=5)
        assert result.data_messages == 4 * 5


class TestInterpolator:
    def test_functional_across_mappings(self):
        streams = []
        for assignment in (
            {"src": 0, "up": 0, "snk": 0},
            {"src": 0, "up": 1, "snk": 2},
        ):
            collect = []
            graph = interpolator_graph(collect)
            n_pes = max(assignment.values()) + 1
            partition = Partition(graph, n_pes, assignment)
            SpiSystem.compile(graph, partition).run(iterations=4)
            streams.append(collect)
        assert streams[0] == streams[1]
        assert streams[0] == [0.0] * 3 + [1.0] * 3 + [2.0] * 3 + [3.0] * 3

    def test_payload_scales_with_rate(self):
        collect = []
        graph = interpolator_graph(collect)
        partition = Partition(graph, 2, {"src": 0, "up": 0, "snk": 1})
        system = SpiSystem.compile(graph, partition)
        result = system.run(iterations=4)
        # up->snk: one 3-token message per iteration, 4 bytes per token
        assert result.data_messages == 4
        assert result.payload_bytes == 4 * 3 * 4


class TestMultiratePipelineShape:
    def test_hsdf_schedule_orders(self):
        graph = decimator_graph([])
        partition = Partition(graph, 2, {"src": 0, "dec": 1, "snk": 1})
        system = SpiSystem.compile(graph, partition)
        # src and its 4 send invocations on PE0
        pe0 = system.schedule.orders[0]
        assert sum(1 for t in pe0 if t.startswith("src")) == 4
        report = system.describe()
        assert "src#0" in report or "src" in report


class TestMultirateAckSoundness:
    """Multirate UBS channels must keep their acknowledgments.

    The sync graph models the ack window as one iteration-granularity
    edge between the #0 invocations; for a channel carrying M > 1
    messages per iteration no such edge faithfully encodes a window of
    W *messages*, so resynchronization is not allowed to judge (and
    remove) it.  Removing it used to let the sender overrun the receive
    buffer (BufferOverflowError on generator seed 36).
    """

    def _compile_seed36(self):
        from repro.conformance import GraphShape, build_case, generate_spec

        case = build_case(generate_spec(36, GraphShape()))
        return SpiSystem.compile(case.graph, case.partition)

    def test_multirate_ubs_channels_keep_acks(self):
        system = self._compile_seed36()
        from repro.spi.runtime import SpiSystem as _S

        multirate = [
            plan
            for plan in system.channel_plans.values()
            if _S._messages_per_iteration(system.schedule, plan.send_actor) > 1
        ]
        assert multirate, "seed 36 must contain a multirate IPC edge"
        for plan in multirate:
            if plan.protocol == "SPI_UBS":
                assert plan.acks_enabled

    def test_seed36_runs_without_overflow(self):
        result = self._compile_seed36().run(
            iterations=12, max_cycles=10_000_000
        )
        assert result.iterations == 12
