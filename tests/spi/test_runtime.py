"""Unit/integration tests for the compiled SPI system."""

import pytest

from repro.dataflow import DataflowGraph, DynamicRate
from repro.mapping import Partition
from repro.spi import Protocol, SpiConfig, SpiSystem
from tests.conftest import build_pipeline_graph as pipeline_graph


class TestCompile:
    def test_channel_per_crossing_edge(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(graph, partition)
        assert set(system.channel_plans) == {"A.o->B.i", "B.o->C.i"}

    def test_feedback_gives_bbs(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(graph, partition)
        for plan in system.channel_plans.values():
            assert plan.protocol == Protocol.BBS
            assert not plan.acks_enabled

    def test_feedforward_gives_ubs(self):
        """With C on a third PE there is no return path to A's PE 0:
        A->B has feedback only if something flows back to PE0."""
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 2})
        system = SpiSystem.compile(
            graph, partition, SpiConfig(resynchronize=False)
        )
        for plan in system.channel_plans.values():
            assert plan.protocol == Protocol.UBS
            assert plan.acks_enabled

    def test_always_ubs_policy(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(
            graph, partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=False),
        )
        for plan in system.channel_plans.values():
            assert plan.protocol == Protocol.UBS

    def test_resync_disables_redundant_acks(self):
        """In the closed A->B->C->A-loop placement the UBS ack edges are
        redundant (the data path throttles the senders), so
        resynchronization turns the acks off."""
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(
            graph, partition, SpiConfig(protocol_policy="always_ubs")
        )
        assert all(
            not plan.acks_enabled for plan in system.channel_plans.values()
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SpiConfig(protocol_policy="telepathy")
        with pytest.raises(ValueError):
            SpiConfig(ubs_window=0)


class TestRun:
    def test_functional_results_cross_pe(self):
        collected = []
        graph = pipeline_graph(collected)
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        SpiSystem.compile(graph, partition).run(iterations=5)
        assert collected == [1, 4, 9, 16, 25]

    def test_single_pe_needs_no_messages(self):
        collected = []
        graph = pipeline_graph(collected)
        partition = Partition.single_processor(graph)
        result = SpiSystem.compile(graph, partition).run(iterations=3)
        assert result.data_messages == 0
        assert collected == [1, 4, 9]

    def test_message_counts(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        result = SpiSystem.compile(graph, partition).run(iterations=10)
        assert result.data_messages == 20  # 2 channels x 10 iterations
        assert result.ack_messages == 0  # BBS
        assert result.payload_bytes == 20 * 4
        assert result.header_bytes == 20 * 4  # static headers

    def test_ubs_acks_counted(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(
            graph, partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=False),
        )
        result = system.run(iterations=10)
        assert result.ack_messages == 20
        assert result.sync_messages == 20

    def test_resync_removes_ack_traffic(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        with_resync = SpiSystem.compile(
            graph, partition, SpiConfig(protocol_policy="always_ubs")
        ).run(iterations=10)
        assert with_resync.ack_messages == 0

    def test_buffer_high_water_within_plan(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(graph, partition)
        result = system.run(iterations=20)
        for name, plan in system.channel_plans.items():
            high = result.buffer_high_water[name]
            assert high <= (plan.capacity_messages + 1) * plan.message_payload_bytes

    @staticmethod
    def _pipelined_graph():
        """Heavy chain with unit pipeline delays so stages can overlap
        across iterations (classic retimed pipeline)."""
        graph = DataflowGraph("pipelined")
        a = graph.actor("A", cycles=400)
        b = graph.actor("B", cycles=500)
        c = graph.actor("C", cycles=300)
        a.add_output("o")
        b.add_input("i")
        b.add_output("o")
        c.add_input("i")
        graph.connect((a, "o"), (b, "i"), delay=1)
        graph.connect((b, "o"), (c, "i"), delay=1)
        return graph

    def test_speedup_against_with_pipeline_delays(self):
        """With unit delays on the stage boundaries the three stages
        overlap; the 3-PE period approaches the slowest stage."""
        graph = self._pipelined_graph()
        r1 = SpiSystem.compile(
            graph, Partition.single_processor(graph)
        ).run(iterations=20)
        graph2 = self._pipelined_graph()
        partition2 = Partition.manual(graph2, {"A": 0, "B": 1, "C": 2})
        r2 = SpiSystem.compile(graph2, partition2).run(iterations=20)
        assert r1.iteration_period_cycles == pytest.approx(1200, rel=0.01)
        # distributed period ~ max stage (500) + communication
        assert r2.iteration_period_cycles < 650
        assert r2.speedup_against(r1) > 1.5

    def test_tiny_compute_not_worth_distributing(self):
        """With 35 cycles of work per iteration, the communication cost
        makes 2 PEs slower than 1 — the crossover the figures show."""
        graph = pipeline_graph()
        r1 = SpiSystem.compile(
            graph, Partition.single_processor(graph)
        ).run(iterations=20)
        graph2 = pipeline_graph()
        partition2 = Partition.manual(graph2, {"A": 0, "B": 1, "C": 0})
        r2 = SpiSystem.compile(graph2, partition2).run(iterations=20)
        assert r2.speedup_against(r1) < 1.0

    def test_iterations_validated(self):
        graph = pipeline_graph()
        system = SpiSystem.compile(graph, Partition.single_processor(graph))
        with pytest.raises(Exception):
            system.run(iterations=0)


class TestAnalysis:
    def test_mcm_bounds_measured_period(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(graph, partition)
        result = system.run(iterations=30)
        assert result.iteration_period_cycles >= (
            system.estimated_iteration_period_cycles() - 1e-6
        )

    def test_sync_cost_reporting(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(graph, partition)
        assert system.sync_cost_per_iteration() >= 2  # two data channels

    def test_fpga_report_spi_only_system(self):
        graph = pipeline_graph()
        partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
        system = SpiSystem.compile(graph, partition)
        report = system.fpga_report()
        # no computation resources declared -> SPI is 100% of the system
        assert report.spi_relative_percent()["slices"] == 100.0
        assert report.spi_library.dsp48 == 0  # SPI never uses DSP48s


class TestVtsIntegration:
    def test_dynamic_edge_uses_dynamic_headers(self):
        graph = DataflowGraph("dyn")

        def src(k, inputs):
            return {"o": list(range(k % 3 + 1))}

        def snk(k, inputs):
            return {}

        a = graph.actor("A", kernel=src, cycles=5)
        b = graph.actor("B", kernel=snk, cycles=5)
        a.add_output("o", rate=DynamicRate(4), token_bytes=2)
        b.add_input("i", rate=DynamicRate(4), token_bytes=2)
        graph.connect((a, "o"), (b, "i"))
        partition = Partition(graph, 2, {"A": 0, "B": 1})
        system = SpiSystem.compile(graph, partition)
        plan = next(iter(system.channel_plans.values()))
        assert plan.dynamic
        result = system.run(iterations=6)
        # dynamic headers are 8 bytes
        assert result.header_bytes == 6 * 8
        # payload: sizes cycle 1,2,3 raw tokens x 2 bytes
        assert result.payload_bytes == (1 + 2 + 3) * 2 * 2
