"""Shared fixtures: canonical graphs and application inputs."""

from __future__ import annotations

import pytest

from repro.dataflow import DataflowGraph, DynamicRate
from repro.mapping import Partition


@pytest.fixture
def chain_graph():
    """Homogeneous 3-actor chain A -> B -> C (all rates 1)."""
    graph = DataflowGraph("chain")
    a = graph.actor("A", cycles=10)
    b = graph.actor("B", cycles=20)
    c = graph.actor("C", cycles=5)
    a.add_output("o")
    b.add_input("i")
    b.add_output("o")
    c.add_input("i")
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    graph.validate()
    return graph


@pytest.fixture
def multirate_graph():
    """Multirate chain: A(2) -> (3)B(1) -> (2)C, reps q = (3, 2, 1)."""
    graph = DataflowGraph("multirate")
    a = graph.actor("A", cycles=5)
    b = graph.actor("B", cycles=3)
    c = graph.actor("C", cycles=2)
    a.add_output("o", rate=2)
    b.add_input("i", rate=3)
    b.add_output("o", rate=1)
    c.add_input("i", rate=2)
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    graph.validate()
    return graph


@pytest.fixture
def cyclic_graph():
    """Two-actor loop with one unit of delay (a well-formed feedback)."""
    graph = DataflowGraph("loop")
    a = graph.actor("A", cycles=4)
    b = graph.actor("B", cycles=6)
    a.add_input("i")
    a.add_output("o")
    b.add_input("i")
    b.add_output("o")
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (a, "i"), delay=1)
    graph.validate()
    return graph


@pytest.fixture
def fig1_graph():
    """The paper's figure 1: A -> B with dynamic rates <=10 and <=8."""
    graph = DataflowGraph("fig1")
    a = graph.actor("A", cycles=1)
    b = graph.actor("B", cycles=1)
    a.add_output("o", rate=DynamicRate(10), token_bytes=2)
    b.add_input("i", rate=DynamicRate(8), token_bytes=2)
    graph.connect((a, "o"), (b, "i"))
    graph.validate()
    return graph


@pytest.fixture
def two_pe_partition(chain_graph):
    """A and C on PE0, B on PE1 — two interprocessor edges."""
    return Partition.manual(chain_graph, {"A": 0, "B": 1, "C": 0})


@pytest.fixture
def speech_frames():
    """Four 256-sample synthetic speech frames (session-stable seed)."""
    from repro.apps.lpc import frame_stream

    return frame_stream(total_samples=4 * 256, frame_size=256, seed=2008)


@pytest.fixture
def crack_setup():
    """Crack model plus a short simulated history (truth, observations)."""
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        simulate_crack_history,
    )

    model = CrackGrowthModel()
    truth, observations = simulate_crack_history(model, steps=10, seed=7)
    return model, truth, observations
