"""Shared fixtures and graph builders: canonical graphs, app inputs.

The ``build_*`` functions are plain importable helpers (``tests`` is a
package: ``from tests.conftest import build_pipeline_graph``) so the
spi, mpi, mapping and integration suites share one set of canonical
pipelines instead of re-declaring them per module; the fixtures below
wrap them for tests that prefer injection.
"""

from __future__ import annotations

import pytest

from repro.dataflow import DataflowGraph, DynamicRate
from repro.mapping import Partition


def build_pipeline_graph(collect=None, cycles=(10, 20, 5)):
    """A -> B -> C with functional kernels (source, square, sink)."""
    graph = DataflowGraph("pipe")

    def src(k, inputs):
        return {"o": [k + 1]}

    def square(k, inputs):
        return {"o": [inputs["i"][0] ** 2]}

    def sink(k, inputs):
        if collect is not None:
            collect.append(inputs["i"][0])
        return {}

    a = graph.actor("A", kernel=src, cycles=cycles[0])
    b = graph.actor("B", kernel=square, cycles=cycles[1])
    c = graph.actor("C", kernel=sink, cycles=cycles[2])
    a.add_output("o")
    b.add_input("i")
    b.add_output("o")
    c.add_input("i")
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    return graph


def build_payload_pipeline(payload_rate=1, token_bytes=4, cycles=(10, 20, 5)):
    """Structural A -> B -> C chain with adjustable message payloads.

    Returns ``(graph, partition)`` with the canonical A/C-on-PE0,
    B-on-PE1 placement (two interprocessor channels).
    """
    graph = DataflowGraph("pipe")
    a = graph.actor("A", cycles=cycles[0])
    b = graph.actor("B", cycles=cycles[1])
    c = graph.actor("C", cycles=cycles[2])
    a.add_output("o", rate=payload_rate, token_bytes=token_bytes)
    b.add_input("i", rate=payload_rate, token_bytes=token_bytes)
    b.add_output("o", rate=payload_rate, token_bytes=token_bytes)
    c.add_input("i", rate=payload_rate, token_bytes=token_bytes)
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    partition = Partition.manual(graph, {"A": 0, "B": 1, "C": 0})
    return graph, partition


def build_sequenced_pipeline(n_hops: int, collect: list):
    """A chain of forwarding actors; the source numbers its tokens."""
    graph = DataflowGraph(f"seq{n_hops}")

    def src(k, inputs):
        return {"o": [k]}

    def forward(k, inputs):
        return {"o": list(inputs["i"])}

    def sink(k, inputs):
        collect.extend(inputs["i"])
        return {}

    previous = graph.actor("src", kernel=src, cycles=3)
    previous.add_output("o")
    for hop in range(n_hops):
        actor = graph.actor(f"hop{hop}", kernel=forward, cycles=5 + hop)
        actor.add_input("i")
        actor.add_output("o")
        graph.connect((previous, "o"), (actor, "i"))
        previous = actor
    sink_actor = graph.actor("snk", kernel=sink, cycles=2)
    sink_actor.add_input("i")
    graph.connect((previous, "o"), (sink_actor, "i"))
    return graph


@pytest.fixture
def pipeline_graph_factory():
    """Factory fixture over :func:`build_pipeline_graph`."""
    return build_pipeline_graph


@pytest.fixture
def payload_pipeline_factory():
    """Factory fixture over :func:`build_payload_pipeline`."""
    return build_payload_pipeline


@pytest.fixture
def chain_graph():
    """Homogeneous 3-actor chain A -> B -> C (all rates 1)."""
    graph = DataflowGraph("chain")
    a = graph.actor("A", cycles=10)
    b = graph.actor("B", cycles=20)
    c = graph.actor("C", cycles=5)
    a.add_output("o")
    b.add_input("i")
    b.add_output("o")
    c.add_input("i")
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    graph.validate()
    return graph


@pytest.fixture
def multirate_graph():
    """Multirate chain: A(2) -> (3)B(1) -> (2)C, reps q = (3, 2, 1)."""
    graph = DataflowGraph("multirate")
    a = graph.actor("A", cycles=5)
    b = graph.actor("B", cycles=3)
    c = graph.actor("C", cycles=2)
    a.add_output("o", rate=2)
    b.add_input("i", rate=3)
    b.add_output("o", rate=1)
    c.add_input("i", rate=2)
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    graph.validate()
    return graph


@pytest.fixture
def cyclic_graph():
    """Two-actor loop with one unit of delay (a well-formed feedback)."""
    graph = DataflowGraph("loop")
    a = graph.actor("A", cycles=4)
    b = graph.actor("B", cycles=6)
    a.add_input("i")
    a.add_output("o")
    b.add_input("i")
    b.add_output("o")
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (a, "i"), delay=1)
    graph.validate()
    return graph


@pytest.fixture
def fig1_graph():
    """The paper's figure 1: A -> B with dynamic rates <=10 and <=8."""
    graph = DataflowGraph("fig1")
    a = graph.actor("A", cycles=1)
    b = graph.actor("B", cycles=1)
    a.add_output("o", rate=DynamicRate(10), token_bytes=2)
    b.add_input("i", rate=DynamicRate(8), token_bytes=2)
    graph.connect((a, "o"), (b, "i"))
    graph.validate()
    return graph


@pytest.fixture
def two_pe_partition(chain_graph):
    """A and C on PE0, B on PE1 — two interprocessor edges."""
    return Partition.manual(chain_graph, {"A": 0, "B": 1, "C": 0})


@pytest.fixture
def speech_frames():
    """Four 256-sample synthetic speech frames (session-stable seed)."""
    from repro.apps.lpc import frame_stream

    return frame_stream(total_samples=4 * 256, frame_size=256, seed=2008)


@pytest.fixture
def crack_setup():
    """Crack model plus a short simulated history (truth, observations)."""
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        simulate_crack_history,
    )

    model = CrackGrowthModel()
    truth, observations = simulate_crack_history(model, steps=10, seed=7)
    return model, truth, observations
