"""Unit tests for the timed task-graph substrate."""

import pytest

from repro.mapping import EdgeKind, TimedEdge, TimedGraph, TimedVertex


def build_two_pe_loop():
    """x (PE0) -> y (PE1) -> x with a unit-delay return edge."""
    graph = TimedGraph("loop")
    graph.add_vertex(TimedVertex("x", cycles=10, pe=0))
    graph.add_vertex(TimedVertex("y", cycles=20, pe=1))
    graph.add_edge(TimedEdge("x", "y", delay=0, kind=EdgeKind.IPC))
    graph.add_edge(TimedEdge("y", "x", delay=1, kind=EdgeKind.SYNC))
    return graph


class TestConstruction:
    def test_duplicate_vertex_rejected(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("x", 1, 0))
        with pytest.raises(ValueError, match="duplicate"):
            graph.add_vertex(TimedVertex("x", 2, 0))

    def test_edge_needs_known_endpoints(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("x", 1, 0))
        with pytest.raises(ValueError, match="not a task"):
            graph.add_edge(TimedEdge("x", "ghost", delay=0))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            TimedEdge("a", "b", delay=-1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TimedEdge("a", "b", delay=0, kind="quantum")

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            TimedVertex("x", cycles=-1, pe=0)

    def test_remove_edge(self):
        graph = build_two_pe_loop()
        edge = graph.out_edges("y")[0]
        graph.remove_edge(edge)
        assert not graph.out_edges("y")
        with pytest.raises(ValueError, match="not in graph"):
            graph.remove_edge(edge)


class TestQueries:
    def test_sync_edges_cross_pe_only(self):
        graph = build_two_pe_loop()
        graph.add_vertex(TimedVertex("z", 5, 0))
        graph.add_edge(TimedEdge("x", "z", delay=0, kind=EdgeKind.INTRA))
        syncs = graph.synchronization_edges()
        assert {(e.src, e.snk) for e in syncs} == {("x", "y"), ("y", "x")}

    def test_tasks_on_and_pes(self):
        graph = build_two_pe_loop()
        assert [v.name for v in graph.tasks_on(1)] == ["y"]
        assert graph.pes == [0, 1]

    def test_copy_independent(self):
        graph = build_two_pe_loop()
        clone = graph.copy()
        clone.remove_edge(clone.edges[0])
        assert len(graph.edges) == 2
        assert len(clone.edges) == 1

    def test_to_dot_renders_pe_clusters(self):
        dot = build_two_pe_loop().to_dot()
        assert "cluster_pe0" in dot
        assert '"x" -> "y"' in dot


class TestMinDelayPaths:
    def test_direct_and_roundtrip(self):
        graph = build_two_pe_loop()
        rho = graph.min_delay_paths()
        assert rho["x"]["y"] == 0
        assert rho["y"]["x"] == 1
        assert rho["x"]["x"] == 0  # empty path by convention

    def test_missing_path_absent(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        graph.add_edge(TimedEdge("a", "b", delay=2))
        rho = graph.min_delay_paths()
        assert rho["a"]["b"] == 2
        assert "a" not in rho["b"]

    def test_parallel_edges_take_minimum(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        graph.add_edge(TimedEdge("a", "b", delay=5))
        graph.add_edge(TimedEdge("a", "b", delay=2))
        assert graph.min_delay_paths()["a"]["b"] == 2

    def test_multi_hop_cheaper_than_direct(self):
        graph = TimedGraph()
        for name, pe in (("a", 0), ("m", 1), ("b", 2)):
            graph.add_vertex(TimedVertex(name, 1, pe))
        graph.add_edge(TimedEdge("a", "b", delay=9))
        graph.add_edge(TimedEdge("a", "m", delay=1))
        graph.add_edge(TimedEdge("m", "b", delay=1))
        assert graph.min_delay_paths()["a"]["b"] == 2


class TestZeroDelayCycle:
    def test_detected(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        graph.add_edge(TimedEdge("a", "b", delay=0))
        graph.add_edge(TimedEdge("b", "a", delay=0))
        assert graph.has_zero_delay_cycle()

    def test_delay_breaks_cycle(self):
        graph = build_two_pe_loop()
        assert not graph.has_zero_delay_cycle()
