"""Unit and integration tests for the pipelining transformation."""

import pytest

from repro.dataflow import DataflowGraph, GraphError, repetitions_vector
from repro.mapping import Partition
from repro.mapping.pipelining import (
    auto_pipeline,
    insert_pipeline_delays,
    stage_assignment,
)
from repro.spi import SpiSystem


def heavy_chain(cycles=(400, 500, 300)):
    graph = DataflowGraph("chain")
    names = ["A", "B", "C"]
    actors = [
        graph.actor(name, cycles=c) for name, c in zip(names, cycles)
    ]
    for left, right in zip(actors, actors[1:]):
        out = left.add_output(f"to_{right.name}")
        inp = right.add_input(f"from_{left.name}")
        graph.connect(out, inp)
    return graph


class TestInsertDelays:
    def test_adds_one_iteration_of_tokens(self):
        graph = heavy_chain()
        result = insert_pipeline_delays(graph, ["A.to_B->B.from_A"])
        edge = result.graph.edge_between("A", "B")
        assert edge.delay == 1  # rate 1, q=1
        assert result.added_delays == {"A.to_B->B.from_A": 1}
        assert result.latency_iterations == 1

    def test_multirate_scales_tokens(self):
        graph = DataflowGraph("mr")
        a = graph.actor("A", cycles=1)
        b = graph.actor("B", cycles=1)
        a.add_output("o", rate=2)
        b.add_input("i", rate=3)
        graph.connect((a, "o"), (b, "i"))
        result = insert_pipeline_delays(graph, ["A.o->B.i"])
        # one iteration consumes q_B * 3 = 2 * 3 = 6 tokens
        assert result.graph.edges[0].delay == 6
        repetitions_vector(result.graph)  # still consistent

    def test_original_untouched(self):
        graph = heavy_chain()
        insert_pipeline_delays(graph, ["A.to_B->B.from_A"])
        assert graph.edge_between("A", "B").delay == 0

    def test_priming_values(self):
        graph = heavy_chain()
        result = insert_pipeline_delays(
            graph,
            ["A.to_B->B.from_A"],
            priming=lambda edge, count: [0.0] * count,
        )
        assert result.graph.edge_between("A", "B").initial_tokens == [0.0]

    def test_priming_length_checked(self):
        graph = heavy_chain()
        with pytest.raises(GraphError, match="priming"):
            insert_pipeline_delays(
                graph, ["A.to_B->B.from_A"], priming=lambda e, c: []
            )

    def test_unknown_edge_rejected(self):
        with pytest.raises(GraphError, match="unknown edges"):
            insert_pipeline_delays(heavy_chain(), ["ghost"])

    def test_depth_validated(self):
        with pytest.raises(GraphError):
            insert_pipeline_delays(heavy_chain(), ["A.to_B->B.from_A"], depth=0)


class TestStageAssignment:
    def test_balances_work(self):
        graph = heavy_chain((400, 500, 300))
        stages = stage_assignment(graph, 2)
        assert stages["A"] == 0
        assert stages["C"] == 1

    def test_monotone_along_topo_order(self):
        graph = heavy_chain((10, 10, 10))
        stages = stage_assignment(graph, 3)
        assert stages == {"A": 0, "B": 1, "C": 2}

    def test_too_many_stages_rejected(self):
        with pytest.raises(GraphError, match="cannot split"):
            stage_assignment(heavy_chain(), 4)

    def test_minimum_stages(self):
        with pytest.raises(GraphError):
            stage_assignment(heavy_chain(), 1)


class TestAutoPipeline:
    def test_end_to_end_speedup_over_single_pe(self):
        """Pipelining + 3 PEs brings the period from the whole chain
        (1200 cycles) down to the slowest stage (~500 + communication),
        and the measured period sits exactly on the MCM bound."""
        flat = heavy_chain()
        base = SpiSystem.compile(
            flat, Partition.single_processor(flat)
        ).run(iterations=15)

        source = heavy_chain()
        result = auto_pipeline(source, stages=3)
        partition = Partition.manual(result.graph, result.stages)
        system = SpiSystem.compile(result.graph, partition)
        piped = system.run(iterations=20)

        assert base.iteration_period_cycles == pytest.approx(1200, rel=0.05)
        assert piped.iteration_period_cycles < 650
        assert piped.iteration_period_cycles == pytest.approx(
            system.estimated_iteration_period_cycles(), rel=0.02
        )
        gain = base.iteration_period_cycles / piped.iteration_period_cycles
        assert gain > 2.0

    def test_delay_pipelining_beats_window_pipelining_on_sync_traffic(self):
        """An unpipelined feedforward mapping reaches a similar period by
        leaning on the UBS ack window; explicit pipeline delays let
        resynchronization replace the per-channel acks with fewer sync
        messages at the same throughput."""
        iterations = 150  # long horizon: let the ack window settle
        flat = heavy_chain()
        window = SpiSystem.compile(
            flat, Partition.manual(flat, {"A": 0, "B": 1, "C": 2})
        ).run(iterations=iterations)

        source = heavy_chain()
        result = auto_pipeline(source, stages=3)
        partition = Partition.manual(result.graph, result.stages)
        piped = SpiSystem.compile(result.graph, partition).run(
            iterations=iterations
        )

        assert piped.iteration_period_cycles <= (
            window.iteration_period_cycles * 1.06
        )
        assert piped.sync_messages < window.sync_messages

    def test_added_sync_edges_enforced_at_runtime(self):
        """The soundness property behind ack removal: the producer never
        overruns the receive buffers even over a long horizon, because
        the *added* resynchronization edge is a real run-time message."""
        source = heavy_chain()
        result = auto_pipeline(source, stages=3)
        partition = Partition.manual(result.graph, result.stages)
        system = SpiSystem.compile(result.graph, partition)
        run = system.run(iterations=100)
        assert run.iterations == 100  # no BufferOverflowError
        if system.resync_result and system.resync_result.added:
            assert run.resync_messages > 0

    def test_stage_mapping_returned(self):
        result = auto_pipeline(heavy_chain(), stages=2)
        assert set(result.stages.values()) == {0, 1}
        assert result.added_delays  # at least one boundary cut

    def test_consistency_preserved(self):
        result = auto_pipeline(heavy_chain(), stages=3)
        repetitions_vector(result.graph)
        result.graph.validate()
