"""Unit and property tests for resynchronization (paper §4.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import (
    EdgeKind,
    TimedEdge,
    TimedVertex,
    maximum_cycle_mean,
    remove_redundant_synchronizations,
    resynchronize,
)
from repro.mapping.sync_graph import SynchronizationGraph, is_redundant


def fan_graph(n_targets=3):
    """One producer PE fanning out sync edges to n consumer tasks that
    are chained on one other PE — the textbook resynchronization case:
    a single sync to the head of the chain subsumes all the others."""
    graph = SynchronizationGraph("fan")
    graph.add_vertex(TimedVertex("src", cycles=1, pe=0))
    previous = None
    for i in range(n_targets):
        name = f"t{i}"
        graph.add_vertex(TimedVertex(name, cycles=1, pe=1))
        if previous is not None:
            graph.add_edge(
                TimedEdge(previous, name, delay=0, kind=EdgeKind.INTRA)
            )
        graph.add_edge(
            TimedEdge("src", name, delay=0, kind=EdgeKind.SYNC)
        )
        previous = name
    return graph


class TestRemoveRedundant:
    def test_fan_collapses_to_head_sync(self):
        graph = fan_graph(3)
        pruned, removed = remove_redundant_synchronizations(graph)
        # syncs to t1 and t2 are implied by the sync to t0 + intra chain
        assert len(removed) == 2
        survivors = {
            (e.src, e.snk)
            for e in pruned.edges
            if e.kind == EdgeKind.SYNC
        }
        assert survivors == {("src", "t0")}

    def test_mutually_vouching_pair_keeps_one(self):
        graph = SynchronizationGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        graph.add_edge(TimedEdge("a", "b", delay=0, kind=EdgeKind.SYNC))
        graph.add_edge(TimedEdge("a", "b", delay=0, kind=EdgeKind.SYNC))
        pruned, removed = remove_redundant_synchronizations(graph)
        assert len(removed) == 1
        assert len(pruned.edges) == 1

    def test_intra_edges_never_removed(self):
        graph = fan_graph(3)
        pruned, _ = remove_redundant_synchronizations(graph)
        intra = pruned.edges_of_kind(EdgeKind.INTRA)
        assert len(intra) == 2

    def test_semantics_preserved(self):
        """Every removed constraint stays implied by the pruned graph."""
        graph = fan_graph(4)
        pruned, removed = remove_redundant_synchronizations(graph)
        rho = pruned.min_delay_paths()
        for edge in removed:
            assert rho[edge.src].get(edge.snk, edge.delay + 1) <= edge.delay


class TestResynchronize:
    def test_reports_costs(self):
        graph = fan_graph(3)
        result = resynchronize(graph)
        assert result.cost_before == 3
        assert result.cost_after <= 1
        assert result.net_savings >= 2

    def test_never_increases_mcm(self):
        graph = fan_graph(3)
        # close the loop so there is a finite MCM to preserve
        graph.add_edge(TimedEdge("t2", "src", delay=1, kind=EdgeKind.SYNC))
        before = maximum_cycle_mean(graph)
        result = resynchronize(graph)
        assert result.mcm_after <= before * (1 + 1e-5) + 1e-5

    def test_no_zero_delay_cycles_introduced(self):
        graph = fan_graph(4)
        result = resynchronize(graph)
        assert not result.graph.has_zero_delay_cycle()

    def test_ack_edges_removable(self):
        """A redundant acknowledgment edge disappears (the paper's SPI
        optimisation: redundant acks are never sent)."""
        graph = SynchronizationGraph()
        graph.add_vertex(TimedVertex("send", 1, 0))
        graph.add_vertex(TimedVertex("recv", 1, 1))
        graph.add_vertex(TimedVertex("reply", 1, 1))
        graph.add_vertex(TimedVertex("home", 1, 0))
        graph.add_edge(TimedEdge("send", "recv", delay=0, kind=EdgeKind.IPC))
        graph.add_edge(TimedEdge("recv", "reply", delay=0, kind=EdgeKind.INTRA))
        graph.add_edge(TimedEdge("reply", "home", delay=0, kind=EdgeKind.IPC))
        graph.add_edge(TimedEdge("home", "send", delay=1, kind=EdgeKind.INTRA))
        ack = graph.add_edge(
            TimedEdge("recv", "send", delay=4, kind=EdgeKind.ACK)
        )
        assert is_redundant(graph, ack)
        pruned, removed = remove_redundant_synchronizations(graph)
        assert ack in removed
        assert not pruned.edges_of_kind(EdgeKind.ACK)

    def test_resync_preserves_all_original_constraints(self):
        graph = fan_graph(5)
        result = resynchronize(graph)
        rho = result.graph.min_delay_paths()
        for edge in graph.edges:
            # implied: a path with at most the original delay exists
            assert rho[edge.src].get(edge.snk, edge.delay + 1) <= edge.delay

    @given(n=st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_fan_always_improves_or_holds(self, n):
        graph = fan_graph(n)
        result = resynchronize(graph)
        assert result.cost_after <= result.cost_before
        # at minimum the chain head sync remains
        assert result.cost_after >= 1
