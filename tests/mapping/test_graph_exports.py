"""Rendering/reporting coverage: dot exports and sync-cost breakdowns."""


from repro.dataflow import DataflowGraph, DynamicRate
from repro.mapping import (
    EdgeKind,
    Partition,
    TimedEdge,
    build_ipc_graph,
    build_selftimed_schedule,
    derive_sync_graph,
)


def two_pe_sync_graph(chain_graph):
    partition = Partition.manual(chain_graph, {"A": 0, "B": 1, "C": 0})
    schedule = build_selftimed_schedule(chain_graph, partition)
    return derive_sync_graph(build_ipc_graph(schedule))


class TestTimedGraphDot:
    def test_clusters_and_styles(self, chain_graph):
        sync = two_pe_sync_graph(chain_graph)
        dot = sync.to_dot()
        assert "cluster_pe0" in dot and "cluster_pe1" in dot
        assert "style=bold" in dot  # ipc edges
        assert "style=solid" in dot  # intra edges
        assert 'label="d=1"' in dot  # the wrap-around delay

    def test_ack_edges_dotted(self, chain_graph):
        sync = two_pe_sync_graph(chain_graph)
        sync.add_edge(
            TimedEdge("B", "A", delay=4, kind=EdgeKind.ACK)
        )
        assert "style=dotted" in sync.to_dot()


class TestSyncCostBreakdown:
    def test_by_kind_with_acks(self, chain_graph):
        sync = two_pe_sync_graph(chain_graph)
        sync.add_edge(TimedEdge("B", "A", delay=4, kind=EdgeKind.ACK))
        breakdown = sync.sync_cost_by_kind()
        assert breakdown[EdgeKind.IPC] == 2
        assert breakdown[EdgeKind.ACK] == 1
        assert sync.sync_cost() == 3

    def test_same_pe_sync_edges_free(self, chain_graph):
        sync = two_pe_sync_graph(chain_graph)
        before = sync.sync_cost()
        sync.add_edge(TimedEdge("A", "C", delay=0, kind=EdgeKind.SYNC))
        assert sync.sync_cost() == before  # A and C share PE0


class TestDataflowDotDynamic:
    def test_dynamic_actors_marked(self):
        graph = DataflowGraph("d")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o", rate=DynamicRate(5))
        b.add_input("i", rate=DynamicRate(5))
        graph.connect((a, "o"), (b, "i"))
        dot = graph.to_dot()
        assert "octagon" in dot  # dynamic actors get a distinct shape
        assert "DynamicRate" in dot
