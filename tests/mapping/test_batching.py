"""Batched (blocked) execution: partitioning, admissibility, runtime.

Covers the mapping-layer surface of heterogeneous batching:

* :class:`Partition` batch/PE-class queries and validation;
* :meth:`Partition.choose_platform` — equal-budget platform selection;
* :func:`batch_is_admissible` / :func:`max_feasible_batch` — the
  blocked-schedule deadlock-freedom check (feedback loops clamp);
* :class:`BatchSchedule` macro-pass arithmetic (exact tail);
* end-to-end batched runs: counters, the gpp no-op rule, compiled vs
  interpreted equivalence, metrics-document invariants, and the
  repetitions > 1 pass-cursor regression.
"""

import pytest

from repro.apps.particle_filter import (
    CrackGrowthModel,
    build_particle_filter_graph,
    simulate_crack_history,
)
from repro.dataflow import DataflowGraph, GraphError
from repro.mapping import Partition
from repro.mapping.selftimed import batch_is_admissible, max_feasible_batch
from repro.observability import validate_metrics
from repro.platform import GPP, PEClass
from repro.spi import SpiSystem
from repro.spi.actors import BatchSchedule

ACCEL = PEClass(
    kind="accelerator",
    dispatch_cycles=20,
    cycles_per_element=0.5,
    resource_cost=2.0,
)


def pipeline_graph():
    """Feed-forward three-stage pipeline: admits any blocking factor."""
    graph = DataflowGraph("batch-pipe")
    a = graph.actor("A", cycles=10)
    b = graph.actor("B", cycles=20)
    c = graph.actor("C", cycles=15)
    a.add_output("o")
    b.add_input("i")
    b.add_output("o")
    c.add_input("i")
    graph.connect((a, "o"), (b, "i"))
    graph.connect((b, "o"), (c, "i"))
    return graph


def hetero_partition(graph, batch_size):
    return Partition(
        graph,
        2,
        {"A": 0, "B": 1, "C": 0},
        pe_classes={1: ACCEL},
        batch_size=batch_size,
    )


class TestPartitionBatchApi:
    def test_requested_batch_is_noop_without_accelerators(self):
        graph = pipeline_graph()
        partition = Partition(
            graph, 2, {"A": 0, "B": 1, "C": 0}, batch_size=8
        )
        assert not partition.has_accelerators
        assert partition.requested_batch == 1

    def test_requested_batch_with_accelerator(self):
        partition = hetero_partition(pipeline_graph(), batch_size=4)
        assert partition.has_accelerators
        assert partition.requested_batch == 4
        assert partition.pe_class_of(0) is GPP
        assert partition.pe_class_of(1) is ACCEL

    def test_resource_budget_used(self):
        partition = hetero_partition(pipeline_graph(), batch_size=1)
        assert partition.resource_budget_used() == pytest.approx(3.0)

    def test_validation(self):
        graph = pipeline_graph()
        assignment = {"A": 0, "B": 1, "C": 0}
        with pytest.raises(GraphError, match="batch_size"):
            Partition(graph, 2, assignment, batch_size=0).validate()
        with pytest.raises(GraphError, match="pe_classes"):
            Partition(
                graph, 2, assignment, pe_classes={5: ACCEL}
            ).validate()
        with pytest.raises(GraphError, match="PEClass"):
            Partition(
                graph, 2, assignment, pe_classes={1: "accelerator"}
            ).validate()


class TestChoosePlatform:
    def test_fits_budget_and_keeps_pe0_gpp(self):
        graph = pipeline_graph()
        partition = Partition.choose_platform(
            graph, budget=3.0, accelerator=ACCEL
        )
        partition.validate()
        assert partition.resource_budget_used() <= 3.0
        # gpp PEs take the low indices: PE 0 (where the apps pin their
        # I/O actors) must stay general-purpose whenever a gpp exists
        if any(not partition.pe_class_of(pe).is_accelerator
               for pe in range(partition.n_pes)):
            assert not partition.pe_class_of(0).is_accelerator

    def test_unaffordable_budget_raises(self):
        with pytest.raises(GraphError, match="budget"):
            Partition.choose_platform(
                pipeline_graph(), budget=0.5, accelerator=ACCEL
            )

    def test_bad_batch_candidates_raise(self):
        graph = pipeline_graph()
        with pytest.raises(GraphError, match="batch_candidates"):
            Partition.choose_platform(
                graph, budget=3.0, accelerator=ACCEL, batch_candidates=()
            )
        with pytest.raises(GraphError, match="batch_candidates"):
            Partition.choose_platform(
                graph, budget=3.0, accelerator=ACCEL, batch_candidates=(0,)
            )

    def test_all_gpp_budget_forces_batch_1(self):
        # accelerator unaffordable -> only gpp splits remain, and
        # batching without accelerators is skipped as a no-op
        expensive = PEClass(
            kind="accelerator",
            dispatch_cycles=20,
            cycles_per_element=0.5,
            resource_cost=100.0,
        )
        partition = Partition.choose_platform(
            pipeline_graph(), budget=3.0, accelerator=expensive
        )
        assert not partition.has_accelerators
        assert partition.batch_size == 1

    def test_pinned_actors_respected(self):
        partition = Partition.choose_platform(
            pipeline_graph(),
            budget=3.0,
            accelerator=ACCEL,
            pinned={"A": 0},
        )
        assert partition.assignment["A"] == 0


class TestBatchAdmissibility:
    def test_feed_forward_admits_any_batch(self):
        system = SpiSystem.compile(
            pipeline_graph(), hetero_partition(pipeline_graph(), 1)
        )
        assert batch_is_admissible(system.schedule, 4)
        assert max_feasible_batch(system.schedule, 8) == 8

    def test_batch_one_always_admissible(self):
        system = SpiSystem.compile(
            pipeline_graph(), hetero_partition(pipeline_graph(), 1)
        )
        assert batch_is_admissible(system.schedule, 1)

    def test_validation(self):
        system = SpiSystem.compile(
            pipeline_graph(), hetero_partition(pipeline_graph(), 1)
        )
        with pytest.raises(ValueError, match="batch"):
            batch_is_admissible(system.schedule, 0)
        with pytest.raises(ValueError, match="batch"):
            max_feasible_batch(system.schedule, 0)

    def test_particle_filter_feedback_clamps_to_1(self):
        # the PF capacity feedback loop carries too few delay tokens
        # for a burst of 4: the compile-time clamp must fall back to 1
        model = CrackGrowthModel()
        _, observations = simulate_crack_history(model, steps=3)
        system = build_particle_filter_graph(
            model, observations, n_particles=32, n_pes=2
        )
        batched = Partition(
            system.graph,
            system.partition.n_pes,
            dict(system.partition.assignment),
            pe_classes={1: ACCEL},
            batch_size=4,
        )
        compiled = SpiSystem.compile(system.graph, batched)
        assert compiled.batch == 1


class TestBatchSchedule:
    def test_exact_tail(self):
        plan = BatchSchedule(iterations=6, batch=4)
        assert plan.counts == [4, 2]
        assert plan.passes == 2

    def test_multiple_of_batch_has_no_tail(self):
        assert BatchSchedule(iterations=8, batch=4).counts == [4, 4]

    def test_batch_larger_than_iterations(self):
        assert BatchSchedule(iterations=3, batch=8).counts == [3]

    def test_validation(self):
        with pytest.raises(ValueError, match="iterations"):
            BatchSchedule(iterations=0, batch=2)
        with pytest.raises(ValueError, match="batch"):
            BatchSchedule(iterations=4, batch=0)


class TestBatchedExecution:
    def run_pipeline(self, batch_size, accelerate=True, **kwargs):
        graph = pipeline_graph()
        if accelerate:
            partition = hetero_partition(graph, batch_size)
        else:
            partition = Partition(
                graph, 2, {"A": 0, "B": 1, "C": 0}, batch_size=batch_size
            )
        system = SpiSystem.compile(graph, partition)
        return system, system.run(iterations=6, metrics=True, **kwargs)

    def test_batched_counters(self):
        system, result = self.run_pipeline(batch_size=4)
        assert system.batch == 4
        assert result.batch == 4
        assert result.batch_dispatches > 0
        assert result.batched_firings >= 2 * result.batch_dispatches
        # B on the accelerator runs 6 firings as bursts of 4 + 2:
        # (4-1 + 2-1) * dispatch_cycles amortized away
        assert result.amortized_dispatch_cycles_saved > 0

    def test_batching_amortizes_dispatch_overhead(self):
        _, plain = self.run_pipeline(batch_size=1)
        _, batched = self.run_pipeline(batch_size=4)
        assert batched.cycles < plain.cycles
        assert batched.data_messages == plain.data_messages

    def test_gpp_batch_request_is_noop(self):
        system, batched = self.run_pipeline(batch_size=4, accelerate=False)
        _, plain = self.run_pipeline(batch_size=1, accelerate=False)
        assert system.batch == 1
        assert batched.batch_dispatches == 0
        assert batched.batched_firings == 0
        assert batched.cycles == plain.cycles
        assert batched.data_messages == plain.data_messages

    def test_compiled_matches_interpreted(self):
        _, compiled = self.run_pipeline(batch_size=4, compiled=True)
        _, interpreted = self.run_pipeline(batch_size=4, compiled=False)
        assert compiled.cycles == interpreted.cycles
        assert compiled.data_messages == interpreted.data_messages
        assert compiled.batched_firings == interpreted.batched_firings
        assert compiled.batch_dispatches == interpreted.batch_dispatches
        assert (
            compiled.amortized_dispatch_cycles_saved
            == interpreted.amortized_dispatch_cycles_saved
        )
        assert compiled.compiled_firings > 0
        assert interpreted.compiled_firings == 0

    def test_metrics_document_batch_invariants(self):
        system, result = self.run_pipeline(batch_size=4)
        document = result.metrics
        validate_metrics(document)  # schema + soundness checks
        assert document["run"]["batch"] == system.batch
        sim = document["simulator"]
        assert sim["batched_firings"] == result.batched_firings
        assert sim["batch_dispatches"] == result.batch_dispatches
        kinds = {pe["index"]: pe["pe_class"] for pe in document["pes"]}
        assert kinds[0] == "gpp"
        assert kinds[1] == "accelerator"
        # batched sends stay B separate wire messages, but B slots can
        # be in flight per macro-pass: the physical bound grows by batch
        for channel in document["channels"]:
            assert (
                channel["physical_slots"]
                == channel["bound_messages"] + system.batch
            )


class TestPassCursorWithRepetitions:
    def multirate_graph(self):
        # B has repetitions 3: it occupies three program entries per
        # macro-pass on its PE
        graph = DataflowGraph("batch-multirate")
        a = graph.actor("A", cycles=10)
        b = graph.actor("B", cycles=5)
        c = graph.actor("C", cycles=8)
        a.add_output("o", rate=3)
        b.add_input("i")
        b.add_output("o")
        c.add_input("i", rate=3)
        graph.connect((a, "o"), (b, "i"))
        graph.connect((b, "o"), (c, "i"))
        return graph

    @pytest.mark.parametrize("compiled", [True, False])
    def test_repeated_actor_fires_full_burst(self, compiled):
        # Regression pin: the pass cursor must advance only after a
        # task's *last* occurrence in the program pass.  Advancing per
        # execution made B's 2nd/3rd occurrences of pass 0 read the
        # tail burst count (counts=[4, 2] for 6 iterations), under-fire
        # 4+2+2 of its 12 due firings, and starve C into
        # SimulationDeadlock.
        graph = self.multirate_graph()
        partition = Partition(
            graph,
            2,
            {"A": 0, "B": 0, "C": 1},
            pe_classes={1: ACCEL},
            batch_size=4,
        )
        system = SpiSystem.compile(graph, partition)
        assert system.batch == 4
        result = system.run(iterations=6, metrics=True, compiled=compiled)
        assert result.iterations == 6
        # ``firings`` stays the logical invocation count for actor and
        # send/receive tasks; only SPI_init genuinely runs per
        # macro-pass instead of per iteration (setup is amortized), so
        # each PE reports exactly (iterations - passes) fewer firings
        # than the unbatched run.
        plain_partition = Partition(
            graph,
            2,
            {"A": 0, "B": 0, "C": 1},
            pe_classes={1: ACCEL},
            batch_size=1,
        )
        plain = SpiSystem.compile(graph, plain_partition).run(
            iterations=6, compiled=compiled
        )
        init_delta = 6 - BatchSchedule(iterations=6, batch=4).passes
        assert [pe.firings for pe in result.pe_stats] == [
            pe.firings - init_delta for pe in plain.pe_stats
        ]

    def test_batched_run_matches_unbatched_traffic(self):
        graph = self.multirate_graph()

        def run(batch_size):
            partition = Partition(
                graph,
                2,
                {"A": 0, "B": 0, "C": 1},
                pe_classes={1: ACCEL},
                batch_size=batch_size,
            )
            return SpiSystem.compile(graph, partition).run(iterations=6)

        assert run(4).data_messages == run(1).data_messages
