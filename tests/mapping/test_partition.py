"""Unit tests for actor-to-PE assignment."""

import pytest

from repro.dataflow import GraphError
from repro.mapping import Partition, static_levels


class TestStaticLevels:
    def test_chain_levels(self, chain_graph):
        levels = static_levels(chain_graph)
        # level = own cycles + longest downstream path
        assert levels["C"] == 5
        assert levels["B"] == 25
        assert levels["A"] == 35

    def test_delay_edges_ignored(self, cyclic_graph):
        levels = static_levels(cyclic_graph)
        assert levels["A"] == 4 + 6
        assert levels["B"] == 6


class TestPartition:
    def test_manual(self, chain_graph):
        partition = Partition.manual(chain_graph, {"A": 0, "B": 1, "C": 0})
        assert partition.n_pes == 2
        assert partition.pe_of(chain_graph.get_actor("B")) == 1
        assert [a.name for a in partition.actors_on(0)] == ["A", "C"]

    def test_manual_missing_actor_rejected(self, chain_graph):
        with pytest.raises(GraphError, match="does not assign"):
            Partition.manual(chain_graph, {"A": 0, "B": 1})

    def test_manual_unknown_actor_rejected(self, chain_graph):
        with pytest.raises(GraphError, match="unknown"):
            Partition.manual(
                chain_graph, {"A": 0, "B": 0, "C": 0, "ghost": 1}
            )

    def test_out_of_range_pe_rejected(self, chain_graph):
        with pytest.raises(GraphError, match="out of range"):
            Partition(chain_graph, 1, {"A": 0, "B": 1, "C": 0})

    def test_single_processor(self, chain_graph):
        partition = Partition.single_processor(chain_graph)
        assert partition.n_pes == 1
        assert not partition.interprocessor_edges()

    def test_interprocessor_edges(self, chain_graph, two_pe_partition):
        crossing = two_pe_partition.interprocessor_edges()
        assert {e.name for e in crossing} == {"A.o->B.i", "B.o->C.i"}
        assert not two_pe_partition.local_edges()

    def test_round_robin_spreads(self, chain_graph):
        partition = Partition.assign(chain_graph, 3, strategy="round_robin")
        assert sorted(partition.assignment.values()) == [0, 1, 2]

    def test_list_schedule_covers_everything(self, multirate_graph):
        partition = Partition.assign(multirate_graph, 2, strategy="list")
        partition.validate()
        assert set(partition.assignment) == {"A", "B", "C"}

    def test_list_schedule_uses_parallelism_when_worth_it(self):
        """A fork of two equally heavy branches should use both PEs."""
        from repro.dataflow import DataflowGraph

        graph = DataflowGraph("fork")
        src = graph.actor("src", cycles=1)
        left = graph.actor("left", cycles=500)
        right = graph.actor("right", cycles=500)
        src.add_output("l")
        src.add_output("r")
        left.add_input("i")
        right.add_input("i")
        graph.connect((src, "l"), (left, "i"))
        graph.connect((src, "r"), (right, "i"))
        partition = Partition.assign(graph, 2, strategy="list")
        assert partition.assignment["left"] != partition.assignment["right"]

    def test_unknown_strategy_rejected(self, chain_graph):
        with pytest.raises(GraphError, match="strategy"):
            Partition.assign(chain_graph, 2, strategy="quantum")

    def test_zero_pes_rejected(self, chain_graph):
        with pytest.raises(GraphError, match="at least one"):
            Partition(chain_graph, 0, {"A": 0, "B": 0, "C": 0})

    def test_used_pes(self, chain_graph):
        partition = Partition(chain_graph, 4, {"A": 0, "B": 3, "C": 0})
        assert partition.used_pes == [0, 3]
