"""Unit tests for synchronization graphs and the redundancy criterion."""


from repro.mapping import (
    EdgeKind,
    TimedEdge,
    TimedVertex,
    build_ipc_graph,
    build_selftimed_schedule,
    derive_sync_graph,
    is_redundant,
    redundant_edges,
)
from repro.mapping.sync_graph import SynchronizationGraph


def sync_of(graph, partition):
    return derive_sync_graph(
        build_ipc_graph(build_selftimed_schedule(graph, partition))
    )


def three_task_graph():
    """a -> b -> c plus a direct a -> c sync edge (the redundant one)."""
    graph = SynchronizationGraph("tri")
    graph.add_vertex(TimedVertex("a", 1, 0))
    graph.add_vertex(TimedVertex("b", 1, 1))
    graph.add_vertex(TimedVertex("c", 1, 2))
    graph.add_edge(TimedEdge("a", "b", delay=0, kind=EdgeKind.SYNC))
    graph.add_edge(TimedEdge("b", "c", delay=0, kind=EdgeKind.SYNC))
    graph.add_edge(TimedEdge("a", "c", delay=0, kind=EdgeKind.SYNC))
    return graph


class TestDerivation:
    def test_sync_graph_copies_ipc(self, chain_graph, two_pe_partition):
        sync = sync_of(chain_graph, two_pe_partition)
        assert {v.name for v in sync.vertices} == {"A", "B", "C"}
        assert len(sync.edges) == 5  # 2 intra + 1 wrap(PE1 self) ... per build
        assert sync.sync_cost() == 2  # the two IPC edges

    def test_sync_cost_by_kind(self, chain_graph, two_pe_partition):
        sync = sync_of(chain_graph, two_pe_partition)
        assert sync.sync_cost_by_kind() == {EdgeKind.IPC: 2}


class TestRedundancy:
    def test_transitive_edge_redundant(self):
        graph = three_task_graph()
        direct = [
            e for e in graph.edges if e.src == "a" and e.snk == "c"
        ][0]
        assert is_redundant(graph, direct)

    def test_supporting_edges_not_redundant(self):
        graph = three_task_graph()
        for edge in graph.edges:
            if (edge.src, edge.snk) != ("a", "c"):
                assert not is_redundant(graph, edge)

    def test_delay_must_not_decrease(self):
        """A path with more delay than the edge cannot subsume it."""
        graph = SynchronizationGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        graph.add_vertex(TimedVertex("c", 1, 2))
        graph.add_edge(TimedEdge("a", "b", delay=1, kind=EdgeKind.SYNC))
        graph.add_edge(TimedEdge("b", "c", delay=1, kind=EdgeKind.SYNC))
        direct = graph.add_edge(
            TimedEdge("a", "c", delay=0, kind=EdgeKind.SYNC)
        )
        assert not is_redundant(graph, direct)

    def test_higher_delay_edge_subsumed_by_tight_path(self):
        graph = SynchronizationGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        graph.add_vertex(TimedVertex("c", 1, 2))
        graph.add_edge(TimedEdge("a", "b", delay=0, kind=EdgeKind.SYNC))
        graph.add_edge(TimedEdge("b", "c", delay=1, kind=EdgeKind.SYNC))
        loose = graph.add_edge(
            TimedEdge("a", "c", delay=3, kind=EdgeKind.SYNC)
        )
        assert is_redundant(graph, loose)

    def test_edge_does_not_vouch_for_itself(self):
        graph = SynchronizationGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        only = graph.add_edge(TimedEdge("a", "b", delay=0, kind=EdgeKind.SYNC))
        assert not is_redundant(graph, only)

    def test_parallel_duplicate_edges_vouch_for_each_other(self):
        graph = SynchronizationGraph()
        graph.add_vertex(TimedVertex("a", 1, 0))
        graph.add_vertex(TimedVertex("b", 1, 1))
        first = graph.add_edge(
            TimedEdge("a", "b", delay=0, kind=EdgeKind.SYNC)
        )
        second = graph.add_edge(
            TimedEdge("a", "b", delay=0, kind=EdgeKind.SYNC)
        )
        assert is_redundant(graph, first)
        assert is_redundant(graph, second)

    def test_redundant_edges_listing(self):
        graph = three_task_graph()
        found = redundant_edges(graph)
        assert {(e.src, e.snk) for e in found} == {("a", "c")}

    def test_same_pe_edges_skipped_by_default(self):
        graph = three_task_graph()
        graph.add_vertex(TimedVertex("a2", 1, 0))
        graph.add_edge(TimedEdge("a", "a2", delay=0, kind=EdgeKind.SYNC))
        graph.add_edge(TimedEdge("a", "a2", delay=0, kind=EdgeKind.SYNC))
        found = redundant_edges(graph, cross_pe_only=True)
        assert all(e.snk != "a2" for e in found)
