"""Unit tests for IPC-graph construction (paper §4.1)."""


from repro.mapping import (
    EdgeKind,
    Partition,
    build_ipc_graph,
    build_selftimed_schedule,
)


def ipc_of(graph, assignment):
    partition = Partition.manual(graph, assignment)
    schedule = build_selftimed_schedule(graph, partition)
    return build_ipc_graph(schedule)


class TestConstruction:
    def test_vertices_match_tasks(self, chain_graph, two_pe_partition):
        schedule = build_selftimed_schedule(chain_graph, two_pe_partition)
        ipc = build_ipc_graph(schedule)
        assert {v.name for v in ipc.vertices} == {"A", "B", "C"}
        assert ipc.vertex("B").pe == 1
        assert ipc.vertex("B").cycles == 20

    def test_intra_edges_follow_program_order(self, chain_graph, two_pe_partition):
        ipc = build_ipc_graph(
            build_selftimed_schedule(chain_graph, two_pe_partition)
        )
        intra = {
            (e.src, e.snk, e.delay) for e in ipc.edges_of_kind(EdgeKind.INTRA)
        }
        # PE0 runs A then C, with the unit-delay wrap C -> A;
        # PE1 runs only B, with the self wrap B -> B.
        assert ("A", "C", 0) in intra
        assert ("C", "A", 1) in intra
        assert ("B", "B", 1) in intra

    def test_ipc_edges_cross_pe_only(self, chain_graph, two_pe_partition):
        ipc = build_ipc_graph(
            build_selftimed_schedule(chain_graph, two_pe_partition)
        )
        crossing = {(e.src, e.snk) for e in ipc.edges_of_kind(EdgeKind.IPC)}
        assert crossing == {("A", "B"), ("B", "C")}

    def test_ipc_edge_carries_payload_bytes(self, chain_graph, two_pe_partition):
        ipc = build_ipc_graph(
            build_selftimed_schedule(chain_graph, two_pe_partition)
        )
        for edge in ipc.edges_of_kind(EdgeKind.IPC):
            assert edge.payload_bytes == 4  # rate 1 x 4-byte tokens

    def test_single_pe_has_no_ipc_edges(self, chain_graph):
        ipc = ipc_of(chain_graph, {"A": 0, "B": 0, "C": 0})
        assert not ipc.edges_of_kind(EdgeKind.IPC)

    def test_application_delay_preserved(self, cyclic_graph):
        ipc = ipc_of(cyclic_graph, {"A": 0, "B": 1})
        back = [
            e for e in ipc.edges_of_kind(EdgeKind.IPC) if e.src == "B"
        ]
        assert back and back[0].delay == 1

    def test_multirate_expansion_tasks(self, multirate_graph):
        ipc = ipc_of(multirate_graph, {"A": 0, "B": 1, "C": 1})
        names = {v.name for v in ipc.vertices}
        assert names == {"A#0", "A#1", "A#2", "B#0", "B#1", "C#0"}
        # every A invocation feeds some B invocation across PEs
        crossing = {e.src for e in ipc.edges_of_kind(EdgeKind.IPC)}
        assert crossing == {"A#0", "A#1", "A#2"}

    def test_eq3_semantics_no_zero_delay_cycle(self, chain_graph, two_pe_partition):
        ipc = build_ipc_graph(
            build_selftimed_schedule(chain_graph, two_pe_partition)
        )
        assert not ipc.has_zero_delay_cycle()
