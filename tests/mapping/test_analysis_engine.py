"""Property and exactness tests for the array-backed analysis engine.

Covers the PR-10 fast path end to end: Howard's-iteration MCM against
the legacy Lawler solver and the self-timed simulation, exactness on the
deadlock / acyclic / parallel-edge / self-loop corners, the incremental
all-pairs min-delay oracle against full recomputation, the memoized
``min_delay_paths`` invalidation rules, deterministic topological
ordering, the closed-form HSDF expansion, incremental resynchronization,
and the branch-and-bound exhaustive partitioner.
"""

import math
import random

import pytest

from repro.conformance.generator import GraphShape, generate_spec
from repro.conformance.spec import build_case
from repro.dataflow import DataflowGraph
from repro.dataflow.hsdf import hsdf_expand
from repro.mapping import (
    EdgeKind,
    MinDelayOracle,
    Partition,
    SynchronizationGraph,
    TimedEdge,
    TimedGraph,
    TimedVertex,
    maximum_cycle_mean,
    maximum_cycle_mean_result,
    remove_redundant_synchronizations,
    resynchronize,
    simulate_selftimed,
)
from repro.mapping.mcm import zero_delay_topological_order
from repro.spi import SpiConfig, SpiSystem


def ring(cycles, delays, name="ring"):
    graph = TimedGraph(name)
    n = len(cycles)
    for i, c in enumerate(cycles):
        graph.add_vertex(TimedVertex(f"t{i}", cycles=c, pe=i))
    for i in range(n):
        graph.add_edge(TimedEdge(f"t{i}", f"t{(i + 1) % n}", delay=delays[i]))
    return graph


def random_timed_graph(rng, max_vertices=10, max_edges=24, max_delay=4):
    graph = TimedGraph("random")
    n = rng.randint(1, max_vertices)
    for i in range(n):
        graph.add_vertex(
            TimedVertex(f"v{i}", cycles=rng.randint(0, 9), pe=0)
        )
    for _ in range(rng.randint(0, max_edges)):
        graph.add_edge(
            TimedEdge(
                src=f"v{rng.randrange(n)}",
                snk=f"v{rng.randrange(n)}",
                delay=rng.randint(0, max_delay),
                kind=EdgeKind.SYNC,
            )
        )
    return graph


def assert_witness_consistent(graph, result):
    """The witness must be a real cycle whose ratio is the value."""
    if not result.cycle:
        return
    assert result.value == result.total_cycles / result.total_delay
    edge_pairs = {(e.src, e.snk) for e in graph.edges}
    n = len(result.cycle)
    for i, src in enumerate(result.cycle):
        snk = result.cycle[(i + 1) % n]
        assert (src, snk) in edge_pairs
    assert result.total_cycles == sum(
        graph.vertex(name).cycles for name in result.cycle
    )


#: 50-seed equivalence campaign spanning the generator's regimes:
#: plain multirate, collective connections, batched/heterogeneous.
_CAMPAIGN = (
    [(seed, GraphShape()) for seed in range(20)]
    + [
        (seed, GraphShape(collective_prob=0.9, max_pes=3))
        for seed in range(20, 35)
    ]
    + [
        (seed, GraphShape(batch_prob=0.9, max_batch=4, max_pes=3))
        for seed in range(35, 50)
    ]
)


class TestHowardEquivalenceCampaign:
    @pytest.mark.parametrize("seed,shape", _CAMPAIGN)
    def test_howard_matches_lawler_and_simulation(self, seed, shape):
        case = build_case(generate_spec(seed, shape))
        system = SpiSystem.compile(case.graph, case.partition, SpiConfig())
        reference = (
            system.resync_result.graph
            if system.resync_result is not None
            else system.sync_graph
        )
        howard = maximum_cycle_mean_result(reference, algorithm="howard")
        lawler = maximum_cycle_mean(reference, algorithm="lawler")
        if math.isinf(lawler) or math.isinf(howard.value):
            assert math.isinf(lawler) and math.isinf(howard.value)
            return
        assert howard.value == pytest.approx(lawler, rel=1e-5, abs=1e-5)
        assert_witness_consistent(reference, howard)

        # The self-timed makespan grows at exactly the MCM rate once the
        # transient settles; the window-averaged slope converges with an
        # O(1/window) error bounded by the schedule's time spread.
        iterations = 120
        window = 60
        trace = simulate_selftimed(reference, iterations=iterations)
        makespan = [
            max(
                trace.end[(v.name, k)]
                for v in reference.vertices
            )
            for k in (iterations - 1 - window, iterations - 1)
        ]
        slope = (makespan[1] - makespan[0]) / window
        spread = sum(v.cycles for v in reference.vertices)
        assert slope == pytest.approx(
            howard.value, abs=2 * spread / window + 1e-6
        )
        assert slope >= howard.value - 1e-6


class TestHowardExactness:
    def test_zero_delay_cycle_is_infinite_with_witness(self):
        graph = ring([1, 2], [0, 0])
        result = maximum_cycle_mean_result(graph)
        assert result.value == math.inf
        assert result.is_deadlock
        assert result.total_delay == 0
        assert set(result.cycle) == {"t0", "t1"}

    def test_acyclic_graph_is_exactly_zero(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("a", 5, 0))
        graph.add_vertex(TimedVertex("b", 7, 1))
        graph.add_edge(TimedEdge("a", "b", delay=0))
        result = maximum_cycle_mean_result(graph)
        assert result.value == 0.0
        assert result.cycle == ()

    def test_exact_value_no_search_tolerance(self):
        # Lawler stops within its binary-search tolerance; Howard's
        # answer is the exact quotient of integer sums.
        graph = ring([10, 10, 10], [0, 0, 3])
        result = maximum_cycle_mean_result(graph)
        assert result.value == 10.0
        assert (result.total_cycles, result.total_delay) == (30, 3)

    def test_exact_rational_value(self):
        graph = ring([1, 0, 0], [1, 1, 1])
        result = maximum_cycle_mean_result(graph)
        assert result.value == 1 / 3

    def test_parallel_edges_use_min_delay(self):
        graph = ring([10, 20], [0, 3])
        # A tighter parallel edge dominates the slack one.
        graph.add_edge(TimedEdge("t1", "t0", delay=1))
        result = maximum_cycle_mean_result(graph)
        assert result.value == 30.0
        assert result.total_delay == 1

    def test_self_loop(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("solo", 7, 0))
        graph.add_edge(TimedEdge("solo", "solo", delay=2))
        result = maximum_cycle_mean_result(graph)
        assert result.value == 3.5
        assert result.cycle == ("solo",)

    def test_self_loop_competing_with_ring(self):
        graph = ring([3, 3], [1, 1])  # ring MCM = 3
        graph.add_edge(TimedEdge("t0", "t0", delay=1))  # self-loop 3/1 = 3
        graph.add_vertex(TimedVertex("hot", 9, 2))
        graph.add_edge(TimedEdge("hot", "hot", delay=2))  # 4.5 wins
        result = maximum_cycle_mean_result(graph)
        assert result.value == 4.5
        assert result.cycle == ("hot",)

    def test_random_graphs_match_lawler(self):
        rng = random.Random(2024)
        for _ in range(150):
            graph = random_timed_graph(rng)
            howard = maximum_cycle_mean_result(graph, algorithm="howard")
            lawler = maximum_cycle_mean(graph, algorithm="lawler")
            if math.isinf(lawler):
                assert howard.value == math.inf
                continue
            assert howard.value == pytest.approx(lawler, rel=1e-5, abs=1e-5)
            assert_witness_consistent(graph, howard)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            maximum_cycle_mean(ring([1, 1], [1, 1]), algorithm="magic")

    def test_legacy_env_flips_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANALYSIS_ENGINE", "legacy")
        result = maximum_cycle_mean_result(ring([10, 20], [0, 1]))
        assert result.algorithm == "lawler"
        assert result.cycle == ()
        monkeypatch.delenv("REPRO_ANALYSIS_ENGINE")
        assert maximum_cycle_mean_result(
            ring([10, 20], [0, 1])
        ).algorithm == "howard"


class TestMinDelayOracle:
    def test_matches_full_recompute_under_random_mutations(self):
        rng = random.Random(99)
        for _ in range(60):
            graph = random_timed_graph(rng, max_vertices=9, max_edges=20)
            edges = list(graph.edges)
            oracle = MinDelayOracle(graph)
            for _ in range(rng.randint(1, 10)):
                if edges and rng.random() < 0.6:
                    victim = edges.pop(rng.randrange(len(edges)))
                    oracle.remove_edge(victim)
                else:
                    n = len(graph.vertices)
                    edge = TimedEdge(
                        src=f"v{rng.randrange(n)}",
                        snk=f"v{rng.randrange(n)}",
                        delay=rng.randint(0, 4),
                        kind=EdgeKind.SYNC,
                    )
                    oracle.add_edge(edge)
                    edges.append(edge)
                got = {u: dict(row) for u, row in oracle.table().items()}
                graph._min_delay_cache = None
                want = graph.min_delay_paths()
                assert got == want
                graph._install_min_delay_cache(oracle.table())

    def test_oracle_feeds_the_graph_memo(self):
        graph = ring([1, 1, 1], [1, 0, 2])
        oracle = MinDelayOracle(graph)
        extra = TimedEdge("t0", "t2", delay=0, kind=EdgeKind.SYNC)
        oracle.add_edge(extra)
        # min_delay_paths() returns the repaired table without recompute
        assert graph.min_delay_paths() is oracle.table()


class TestMinDelayMemo:
    def test_repeated_calls_return_memo(self):
        graph = ring([1, 1], [1, 1])
        first = graph.min_delay_paths()
        assert graph.min_delay_paths() is first

    def test_add_edge_invalidates(self):
        graph = ring([1, 1], [3, 3])
        before = graph.min_delay_paths()
        graph.add_edge(TimedEdge("t0", "t1", delay=1, kind=EdgeKind.SYNC))
        after = graph.min_delay_paths()
        assert after is not before
        assert after["t0"]["t1"] == 1

    def test_remove_edge_invalidates(self):
        graph = ring([1, 1], [3, 3])
        shortcut = TimedEdge("t0", "t1", delay=1, kind=EdgeKind.SYNC)
        graph.add_edge(shortcut)
        assert graph.min_delay_paths()["t0"]["t1"] == 1
        graph.remove_edge(shortcut)
        assert graph.min_delay_paths()["t0"]["t1"] == 3

    def test_add_vertex_invalidates(self):
        graph = ring([1, 1], [1, 1])
        before = graph.min_delay_paths()
        graph.add_vertex(TimedVertex("new", 1, 0))
        after = graph.min_delay_paths()
        assert after is not before
        assert "new" in after


class TestTopologicalDeterminism:
    def test_order_independent_of_insertion_order(self):
        def build(vertex_order, edge_order):
            graph = TimedGraph("topo")
            for name in vertex_order:
                graph.add_vertex(TimedVertex(name, 1, 0))
            for src, snk in edge_order:
                graph.add_edge(TimedEdge(src, snk, delay=0))
            return graph

        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        orders = set()
        rng = random.Random(5)
        for _ in range(6):
            vertices = ["a", "b", "c", "d"]
            shuffled = list(edges)
            rng.shuffle(vertices)
            rng.shuffle(shuffled)
            graph = build(vertices, shuffled)
            orders.add(tuple(zero_delay_topological_order(graph)))
        # The heap-based Kahn order is the unique lexicographically
        # smallest topological order, whatever the insertion order.
        assert orders == {("a", "b", "c", "d")}

    def test_simulation_engines_identical(self):
        rng = random.Random(31)
        for _ in range(40):
            graph = random_timed_graph(rng, max_vertices=8, max_edges=16)
            if graph.has_zero_delay_cycle():
                continue
            fast = simulate_selftimed(graph, 15, engine="vectorized")
            slow = simulate_selftimed(graph, 15, engine="python")
            assert fast.start == slow.start
            assert fast.end == slow.end

    def test_auto_engine_matches_explicit(self):
        graph = ring([3, 5, 2], [1, 0, 2])
        auto = simulate_selftimed(graph, 10, engine="auto")
        explicit = simulate_selftimed(graph, 10, engine="python")
        assert auto.start == explicit.start
        assert auto.end == explicit.end

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            simulate_selftimed(ring([1, 1], [1, 1]), 2, engine="turbo")


def _random_sync_graph(rng, trial):
    graph = SynchronizationGraph(f"sync{trial}")
    n = rng.randint(3, 10)
    for i in range(n):
        graph.add_vertex(
            TimedVertex(f"v{i}", cycles=rng.randint(1, 6), pe=rng.randrange(3))
        )
    for i in range(n):
        graph.add_edge(
            TimedEdge(
                f"v{i}",
                f"v{(i + 1) % n}",
                delay=1 if i == n - 1 else rng.randint(0, 1),
                kind=EdgeKind.IPC,
            )
        )
    for _ in range(rng.randint(0, 12)):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        graph.add_edge(
            TimedEdge(
                f"v{a}",
                f"v{b}",
                delay=rng.randint(0, 3),
                kind=rng.choice([EdgeKind.SYNC, EdgeKind.ACK]),
            )
        )
    return graph


def _edge_key(edge):
    return (edge.src, edge.snk, edge.delay, edge.kind)


class TestIncrementalResynchronization:
    def test_pruning_identical_to_legacy(self):
        rng = random.Random(17)
        for trial in range(30):
            graph = _random_sync_graph(rng, trial)
            fast, removed_fast = remove_redundant_synchronizations(
                graph, incremental=True
            )
            slow, removed_slow = remove_redundant_synchronizations(
                graph, incremental=False
            )
            assert list(map(_edge_key, removed_fast)) == list(
                map(_edge_key, removed_slow)
            )
            assert list(map(_edge_key, fast.edges)) == list(
                map(_edge_key, slow.edges)
            )

    def test_full_resynchronize_identical_to_legacy(self):
        rng = random.Random(23)
        for trial in range(12):
            graph = _random_sync_graph(rng, trial)
            fast = resynchronize(graph, incremental=True)
            slow = resynchronize(graph, incremental=False)
            assert list(map(_edge_key, fast.graph.edges)) == list(
                map(_edge_key, slow.graph.edges)
            )
            assert list(map(_edge_key, fast.added)) == list(
                map(_edge_key, slow.added)
            )
            assert fast.cost_after == slow.cost_after
            assert fast.cost_before == slow.cost_before


class TestClosedFormHsdf:
    def _graphs(self):
        rng = random.Random(11)
        for trial in range(25):
            graph = DataflowGraph(f"mr{trial}")
            n = rng.randint(2, 5)
            # Derive consistent rates from a target repetitions vector:
            # for q_a firings of the producer and q_b of the consumer,
            # rates (q_b/g, q_a/g) balance the edge exactly.
            reps = [rng.randint(1, 4) for _ in range(n)]
            actors = [
                graph.actor(f"A{i}", cycles=rng.randint(1, 5))
                for i in range(n)
            ]

            def balanced_rates(i, j):
                g = math.gcd(reps[i], reps[j])
                scale = rng.randint(1, 2)
                return reps[j] // g * scale, reps[i] // g * scale

            for i in range(n - 1):
                p, c = balanced_rates(i, i + 1)
                out = actors[i].add_output(f"o{i}", rate=p)
                inp = actors[i + 1].add_input(f"i{i}", rate=c)
                graph.connect(out, inp, delay=rng.randint(0, 6))
            p, c = balanced_rates(n - 1, 0)
            out = actors[-1].add_output("fb_o", rate=p)
            inp = actors[0].add_input("fb_i", rate=c)
            graph.connect(out, inp, delay=rng.randint(24, 48))
            yield graph

    @staticmethod
    def _shape(expanded):
        return (
            sorted(a.name for a in expanded.actors),
            sorted(
                (
                    e.src_actor.name,
                    e.snk_actor.name,
                    e.source.name,
                    e.sink.name,
                    e.delay,
                    e.name,
                )
                for e in expanded.edges
            ),
        )

    def test_closed_form_identical_to_enumeration(self):
        for graph in self._graphs():
            fast = hsdf_expand(graph, method="closed_form")
            slow = hsdf_expand(graph, method="enumerate")
            assert self._shape(fast) == self._shape(slow)

    def test_unknown_method_rejected(self):
        graph = DataflowGraph("g")
        graph.actor("A", cycles=1)
        with pytest.raises(Exception, match="method"):
            hsdf_expand(graph, method="cursed")


class TestExhaustiveBranchAndBound:
    def _graph(self, rng, n):
        graph = DataflowGraph("bb")
        actors = [graph.actor(f"A{i}", cycles=rng.randint(1, 9)) for i in range(n)]
        for i in range(n - 1):
            out = actors[i].add_output(f"o{i}", rate=1)
            inp = actors[i + 1].add_input(f"i{i}", rate=1)
            graph.connect(out, inp, delay=0)
        out = actors[-1].add_output("fb_o", rate=1)
        inp = actors[0].add_input("fb_i", rate=1)
        graph.connect(out, inp, delay=n)
        return graph

    def test_pruned_search_matches_unpruned(self):
        from repro.mapping.ipc_graph import build_ipc_graph
        from repro.mapping.mcm import maximum_cycle_mean as mcm
        from repro.mapping.selftimed import build_selftimed_schedule

        def reference_cost(candidate):
            schedule = build_selftimed_schedule(candidate.graph, candidate)
            ipc = build_ipc_graph(schedule)
            return mcm(ipc) + 2.0 * len(candidate.interprocessor_edges())

        rng = random.Random(41)
        for n in (3, 4, 5):
            graph = self._graph(rng, n)
            pruned = Partition.exhaustive(graph, 2)
            # passing the same cost explicitly disables pruning, so this
            # walks every candidate exactly like the legacy product loop
            unpruned = Partition.exhaustive(graph, 2, cost=reference_cost)
            assert pruned.assignment == unpruned.assignment
