"""Unit tests for maximum cycle mean and self-timed simulation."""

import math

import pytest

from repro.mapping import (
    TimedEdge,
    TimedGraph,
    TimedVertex,
    maximum_cycle_mean,
    simulate_selftimed,
)


def ring(cycles, delays):
    """n-task ring with given execution times and per-edge delays."""
    graph = TimedGraph("ring")
    n = len(cycles)
    for i, c in enumerate(cycles):
        graph.add_vertex(TimedVertex(f"t{i}", cycles=c, pe=i))
    for i in range(n):
        graph.add_edge(
            TimedEdge(f"t{i}", f"t{(i + 1) % n}", delay=delays[i])
        )
    return graph


class TestMaximumCycleMean:
    def test_simple_ring(self):
        graph = ring([10, 20], [0, 1])
        # one cycle: total time 30, total delay 1 -> MCM 30
        assert maximum_cycle_mean(graph) == pytest.approx(30, rel=1e-5)

    def test_more_delay_lowers_mcm(self):
        graph = ring([10, 20], [1, 1])
        assert maximum_cycle_mean(graph) == pytest.approx(15, rel=1e-5)

    def test_max_over_cycles(self):
        graph = ring([10, 20], [0, 1])
        # add a second, slower cycle through t0
        graph.add_vertex(TimedVertex("slow", cycles=100, pe=2))
        graph.add_edge(TimedEdge("t0", "slow", delay=0))
        graph.add_edge(TimedEdge("slow", "t0", delay=1))
        assert maximum_cycle_mean(graph) == pytest.approx(110, rel=1e-5)

    def test_acyclic_graph_is_zero(self):
        graph = TimedGraph()
        graph.add_vertex(TimedVertex("a", 5, 0))
        graph.add_vertex(TimedVertex("b", 5, 1))
        graph.add_edge(TimedEdge("a", "b", delay=0))
        assert maximum_cycle_mean(graph) == 0.0

    def test_zero_delay_cycle_is_infinite(self):
        graph = ring([1, 1], [0, 0])
        assert maximum_cycle_mean(graph) == math.inf

    def test_empty_graph(self):
        assert maximum_cycle_mean(TimedGraph()) == 0.0


class TestSelfTimedSimulation:
    def test_period_matches_mcm(self):
        graph = ring([10, 20], [0, 1])
        trace = simulate_selftimed(graph, iterations=20)
        assert trace.iteration_period("t0") == pytest.approx(
            maximum_cycle_mean(graph), rel=1e-3
        )

    def test_pipeline_throughput_with_more_delay(self):
        """Extra delay tokens let the two PEs pipeline: the period
        approaches the MCM of 15 (cycle time 30 over 2 delays)."""
        graph = ring([10, 20], [1, 1])
        trace = simulate_selftimed(graph, iterations=60)
        period = trace.iteration_period("t0")
        assert period == pytest.approx(15, rel=0.05)
        assert period >= maximum_cycle_mean(graph) - 1e-6

    def test_eq3_start_end_times(self):
        graph = ring([10, 20], [0, 1])
        trace = simulate_selftimed(graph, iterations=3)
        # iteration 0: t0 starts at 0, t1 at 10
        assert trace.start[("t0", 0)] == 0
        assert trace.start[("t1", 0)] == 10
        # iteration 1 of t0 waits for end of t1 iteration 0 (delay 1)
        assert trace.start[("t0", 1)] == 30

    def test_makespan(self):
        graph = ring([10, 20], [0, 1])
        trace = simulate_selftimed(graph, iterations=1)
        assert trace.makespan() == 30

    def test_deadlock_rejected(self):
        graph = ring([1, 1], [0, 0])
        with pytest.raises(ValueError, match="zero-delay"):
            simulate_selftimed(graph, iterations=2)

    def test_period_needs_enough_iterations(self):
        graph = ring([10, 20], [0, 1])
        trace = simulate_selftimed(graph, iterations=3)
        with pytest.raises(ValueError, match="iterations"):
            trace.iteration_period("t0")

    def test_simulated_period_never_beats_mcm(self):
        """MCM is a provable lower bound on the self-timed period."""
        for delays in ([0, 1], [1, 1], [2, 1]):
            graph = ring([7, 13], delays)
            trace = simulate_selftimed(graph, iterations=25)
            period = trace.iteration_period("t0")
            assert period >= maximum_cycle_mean(graph) - 1e-6
