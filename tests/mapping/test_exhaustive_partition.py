"""Unit tests for exhaustive partition search and the describe() report."""

import pytest

from repro.dataflow import DataflowGraph, GraphError
from repro.mapping import Partition
from repro.spi import SpiSystem


def fork_graph():
    """src feeding two heavy parallel branches joined by a sink."""
    graph = DataflowGraph("fork")
    src = graph.actor("src", cycles=10)
    left = graph.actor("left", cycles=400)
    right = graph.actor("right", cycles=400)
    sink = graph.actor("sink", cycles=10)
    src.add_output("l")
    src.add_output("r")
    left.add_input("i")
    left.add_output("o")
    right.add_input("i")
    right.add_output("o")
    sink.add_input("l")
    sink.add_input("r")
    graph.connect((src, "l"), (left, "i"))
    graph.connect((src, "r"), (right, "i"))
    graph.connect((left, "o"), (sink, "l"))
    graph.connect((right, "o"), (sink, "r"))
    return graph


class TestExhaustive:
    def test_separates_heavy_branches(self):
        partition = Partition.exhaustive(fork_graph(), n_pes=2)
        assert partition.assignment["left"] != partition.assignment["right"]

    def test_never_worse_than_heuristics(self):
        from repro.mapping import (
            build_ipc_graph,
            build_selftimed_schedule,
            maximum_cycle_mean,
        )

        graph = fork_graph()

        def mcm_of(partition):
            schedule = build_selftimed_schedule(graph, partition)
            return maximum_cycle_mean(build_ipc_graph(schedule))

        best = Partition.exhaustive(graph, n_pes=2)
        heuristic = Partition.assign(graph, 2, strategy="list")
        assert mcm_of(best) <= mcm_of(heuristic) + 1e-6

    def test_symmetry_broken(self):
        partition = Partition.exhaustive(fork_graph(), n_pes=2)
        assert partition.assignment["src"] == 0  # first actor pinned

    def test_custom_cost(self):
        # a cost that hates interprocessor edges -> single PE wins
        partition = Partition.exhaustive(
            fork_graph(),
            n_pes=2,
            cost=lambda p: len(p.interprocessor_edges()),
        )
        assert len(set(partition.assignment.values())) == 1

    def test_size_limit(self):
        graph = DataflowGraph("big")
        previous = None
        for index in range(13):
            actor = graph.actor(f"a{index}", cycles=1)
            if previous is not None:
                out = previous.add_output(f"o{index}")
                inp = actor.add_input(f"i{index}")
                graph.connect(out, inp)
            previous = actor
        with pytest.raises(GraphError, match="too large"):
            Partition.exhaustive(graph, n_pes=2)

    def test_via_assign_strategy(self):
        partition = Partition.assign(fork_graph(), 2, strategy="exhaustive")
        partition.validate()


class TestDescribe:
    def test_report_contents(self):
        graph = fork_graph()
        partition = Partition.exhaustive(graph, n_pes=2)
        system = SpiSystem.compile(graph, partition)
        report = system.describe()
        assert "SPI system" in report
        assert "self-timed schedule" in report
        assert "PE0:" in report and "PE1:" in report
        assert "SPI_static" in report or "none" in report
        assert "MCM bound" in report

    def test_single_pe_report(self):
        graph = fork_graph()
        system = SpiSystem.compile(graph, Partition.single_processor(graph))
        assert "none (single PE)" in system.describe()

    def test_vts_noted(self):
        from repro.dataflow import DynamicRate

        graph = DataflowGraph("dyn")
        a = graph.actor("A", cycles=1)
        b = graph.actor("B", cycles=1)
        a.add_output("o", rate=DynamicRate(3))
        b.add_input("i", rate=DynamicRate(3))
        graph.connect((a, "o"), (b, "i"))
        system = SpiSystem.compile(graph, Partition(graph, 2, {"A": 0, "B": 1}))
        report = system.describe()
        assert "VTS conversion" in report
        assert "SPI_dynamic" in report
