"""Unit tests for self-timed schedule construction."""

import pytest

from repro.dataflow import GraphError
from repro.mapping import Partition, build_selftimed_schedule


class TestHomogeneous:
    def test_orders_follow_pass(self, chain_graph, two_pe_partition):
        schedule = build_selftimed_schedule(chain_graph, two_pe_partition)
        assert schedule.orders[0] == ["A", "C"]
        assert schedule.orders[1] == ["B"]
        assert schedule.task_graph is chain_graph

    def test_pe_lookup(self, chain_graph, two_pe_partition):
        schedule = build_selftimed_schedule(chain_graph, two_pe_partition)
        assert schedule.pe_of_task("B") == 1
        assert schedule.position("C") == 1

    def test_single_pe(self, chain_graph):
        partition = Partition.single_processor(chain_graph)
        schedule = build_selftimed_schedule(chain_graph, partition)
        assert schedule.orders[0] == ["A", "B", "C"]


class TestMultirate:
    def test_invocation_tasks(self, multirate_graph):
        partition = Partition.manual(
            multirate_graph, {"A": 0, "B": 1, "C": 1}
        )
        schedule = build_selftimed_schedule(multirate_graph, partition)
        assert schedule.orders[0] == ["A#0", "A#1", "A#2"]
        assert schedule.orders[1] == ["B#0", "B#1", "C#0"]

    def test_task_graph_is_expansion(self, multirate_graph):
        partition = Partition.single_processor(multirate_graph)
        schedule = build_selftimed_schedule(multirate_graph, partition)
        assert len(schedule.task_graph) == 6
        assert schedule.task_graph is not multirate_graph

    def test_invocations_inherit_actor_pe(self, multirate_graph):
        partition = Partition.manual(
            multirate_graph, {"A": 1, "B": 0, "C": 1}
        )
        schedule = build_selftimed_schedule(multirate_graph, partition)
        for task, pe in schedule.task_pe.items():
            origin = task.split("#")[0]
            assert pe == partition.assignment[origin]

    def test_validation_catches_double_booking(self, chain_graph, two_pe_partition):
        schedule = build_selftimed_schedule(chain_graph, two_pe_partition)
        schedule.orders[1].append("A")  # A already on PE0
        with pytest.raises(GraphError, match="scheduled on both"):
            schedule.validate()

    def test_tasks_enumeration(self, chain_graph, two_pe_partition):
        schedule = build_selftimed_schedule(chain_graph, two_pe_partition)
        assert sorted(schedule.tasks()) == ["A", "B", "C"]
