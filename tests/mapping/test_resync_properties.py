"""Property tests for resynchronization (paper §4.1).

The central soundness claim: an edge may only be removed when its
precedence constraint is *implied* by what remains.  Hypothesis
generates random synchronization graphs and checks that for every
removed edge ``e`` the pruned graph still contains a path from
``src(e)`` to ``snk(e)`` whose total delay is at most ``delay(e)`` —
reachability in the remaining sync graph covers the removed constraint
(eq. 3: ``start(snk, k) >= end(src, k - delay)`` stays enforced).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.mcm import maximum_cycle_mean
from repro.mapping.resync import (
    remove_redundant_synchronizations,
    resynchronize,
)
from repro.mapping.sync_graph import SynchronizationGraph
from repro.mapping.timed_graph import EdgeKind, TimedEdge, TimedVertex


@st.composite
def sync_graphs(draw):
    """A random multi-PE synchronization graph.

    A delay-1 ring keeps the graph live and strongly connected (finite
    MCM, no zero-delay cycle); extra random cross-PE sync edges create
    the redundancy the pruner hunts for.  Extra backward edges carry at
    least one delay so no zero-delay cycle can form.
    """
    n_tasks = draw(st.integers(3, 7))
    n_pes = draw(st.integers(2, 3))
    graph = SynchronizationGraph("fuzz_sync")
    names = []
    for index in range(n_tasks):
        name = f"t{index}"
        names.append(name)
        graph.add_vertex(
            TimedVertex(
                name=name,
                cycles=draw(st.integers(1, 20)),
                pe=index % n_pes,
            )
        )
    for index in range(n_tasks):
        src, snk = names[index], names[(index + 1) % n_tasks]
        closing = index == n_tasks - 1
        cross = graph.vertex(src).pe != graph.vertex(snk).pe
        graph.add_edge(
            TimedEdge(
                src=src,
                snk=snk,
                delay=1 if closing else 0,
                kind=EdgeKind.SYNC if cross else EdgeKind.INTRA,
            )
        )
    n_extra = draw(st.integers(0, 6))
    for _ in range(n_extra):
        i = draw(st.integers(0, n_tasks - 1))
        j = draw(st.integers(0, n_tasks - 1))
        if i == j or graph.vertex(names[i]).pe == graph.vertex(names[j]).pe:
            continue
        min_delay = 0 if i < j else 1
        graph.add_edge(
            TimedEdge(
                src=names[i],
                snk=names[j],
                delay=draw(st.integers(min_delay, 3)),
                kind=EdgeKind.SYNC,
            )
        )
    return graph


class TestPruneSoundness:
    @given(graph=sync_graphs())
    @settings(max_examples=60, deadline=None)
    def test_removed_edges_are_covered_by_remaining_paths(self, graph):
        pruned, removed = remove_redundant_synchronizations(graph)
        table = pruned.min_delay_paths()
        for edge in removed:
            assert edge.kind in EdgeKind.SYNCHRONIZING
            remaining = table[edge.src].get(edge.snk)
            # the pruned graph must still enforce the removed constraint:
            # a path with no more accumulated delay (iteration skew)
            assert remaining is not None
            assert remaining <= edge.delay
        assert pruned.sync_cost() == graph.sync_cost() - len(removed)

    @given(graph=sync_graphs())
    @settings(max_examples=40, deadline=None)
    def test_prune_is_a_fixpoint(self, graph):
        pruned, _ = remove_redundant_synchronizations(graph)
        again, removed_again = remove_redundant_synchronizations(pruned)
        assert removed_again == []
        assert again.sync_cost() == pruned.sync_cost()


class TestResynchronize:
    @given(graph=sync_graphs())
    @settings(max_examples=30, deadline=None)
    def test_never_raises_cost_and_preserves_mcm(self, graph):
        mcm_before = maximum_cycle_mean(graph)
        result = resynchronize(graph, preserve_mcm=True)
        assert result.cost_after <= result.cost_before
        assert result.mcm_before == mcm_before
        assert result.mcm_after <= mcm_before * (1 + 1e-6) + 1e-6
        # the result graph must stay deadlock-free
        assert not result.graph.has_zero_delay_cycle()
