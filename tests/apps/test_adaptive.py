"""Unit and integration tests for the adaptive noise canceller."""

import numpy as np
import pytest

from repro.apps.adaptive import (
    LmsFilter,
    build_multichannel_canceller,
    fir_filter,
    lms_block_cycles,
    make_channel_workload,
)
from repro.spi import SpiSystem


class TestFirFilter:
    def test_impulse_response_recovers_taps(self):
        taps = np.array([0.5, -0.25, 0.125])
        impulse = np.zeros(6)
        impulse[0] = 1.0
        out = fir_filter(impulse, taps)
        assert np.allclose(out[:3], taps)
        assert np.allclose(out[3:], 0.0)

    def test_linearity(self):
        rng = np.random.RandomState(0)
        x, y = rng.randn(32), rng.randn(32)
        h = rng.randn(4)
        assert np.allclose(
            fir_filter(x + 3 * y, h), fir_filter(x, h) + 3 * fir_filter(y, h)
        )


class TestLmsFilter:
    def test_identifies_unknown_system(self):
        """NLMS converges to the true noise path on stationary input."""
        rng = np.random.RandomState(1)
        truth = np.array([0.4, -0.3, 0.2, 0.1])
        reference = rng.randn(4000)
        primary = fir_filter(reference, truth)
        lms = LmsFilter(taps=4, step_size=0.5)
        lms.process_block(reference, primary)
        assert np.allclose(lms.weights, truth, atol=0.05)

    def test_error_power_decreases(self):
        rng = np.random.RandomState(2)
        truth = rng.uniform(-0.5, 0.5, size=8)
        reference = rng.randn(2000)
        primary = fir_filter(reference, truth)
        lms = LmsFilter(taps=8)
        errors = lms.process_block(reference, primary)
        early = float(np.mean(errors[:200] ** 2))
        late = float(np.mean(errors[-200:] ** 2))
        assert late < early / 10

    def test_state_persists_across_blocks(self):
        rng = np.random.RandomState(3)
        truth = np.array([0.6, -0.2])
        reference = rng.randn(1000)
        primary = fir_filter(reference, truth)
        one_shot = LmsFilter(taps=2)
        expected = one_shot.process_block(reference, primary)
        blocked = LmsFilter(taps=2)
        pieces = [
            blocked.process_block(reference[i : i + 100], primary[i : i + 100])
            for i in range(0, 1000, 100)
        ]
        assert np.allclose(np.concatenate(pieces), expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            LmsFilter(taps=0)
        with pytest.raises(ValueError):
            LmsFilter(taps=2, step_size=2.5)
        with pytest.raises(ValueError):
            LmsFilter(taps=2).process_block([1.0], [1.0, 2.0])

    def test_cycle_model(self):
        assert lms_block_cycles(64, 8) > lms_block_cycles(32, 8)
        assert lms_block_cycles(32, 16) > lms_block_cycles(32, 8)
        with pytest.raises(ValueError):
            lms_block_cycles(0, 8)


class TestWorkload:
    def test_deterministic_per_channel(self):
        a = make_channel_workload(256, channel_index=1)
        b = make_channel_workload(256, channel_index=1)
        assert np.array_equal(a.primary, b.primary)

    def test_channels_differ(self):
        a = make_channel_workload(256, channel_index=0)
        b = make_channel_workload(256, channel_index=1)
        assert not np.array_equal(a.primary, b.primary)

    def test_primary_is_clean_plus_noise(self):
        workload = make_channel_workload(256, channel_index=0)
        assert not np.allclose(workload.primary, workload.clean)


class TestMultichannelSystem:
    def test_noise_actually_cancelled(self):
        system = build_multichannel_canceller(
            n_channels=2, n_pes=3, block=32, samples=1024
        )
        SpiSystem.compile(system.graph, system.partition).run(iterations=16)
        for channel in range(2):
            before, after = system.residual_noise_power(channel)
            attenuation_db = 10 * np.log10(before / max(after, 1e-12))
            assert attenuation_db > 6.0

    def test_all_channels_static_spi(self):
        system = build_multichannel_canceller(n_channels=2, n_pes=3)
        spi = SpiSystem.compile(system.graph, system.partition)
        assert spi.channel_plans
        assert all(not plan.dynamic for plan in spi.channel_plans.values())

    def test_distributed_equals_sequential(self):
        distributed = build_multichannel_canceller(
            n_channels=2, n_pes=3, block=32, samples=512
        )
        SpiSystem.compile(
            distributed.graph, distributed.partition
        ).run(iterations=8)
        sequential = build_multichannel_canceller(
            n_channels=2, n_pes=1, block=32, samples=512
        )
        SpiSystem.compile(
            sequential.graph, sequential.partition
        ).run(iterations=8)
        for channel in range(2):
            assert np.allclose(
                distributed.cleaned_stream(channel),
                sequential.cleaned_stream(channel),
            )

    def test_more_pes_faster(self):
        times = {}
        for n_pes in (1, 3, 5):
            system = build_multichannel_canceller(
                n_channels=4, n_pes=n_pes, block=32, samples=512
            )
            result = SpiSystem.compile(
                system.graph, system.partition
            ).run(iterations=6)
            times[n_pes] = result.iteration_period_cycles
        assert times[3] < times[1]
        assert times[5] < times[3]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_multichannel_canceller(n_channels=0, n_pes=1)
        with pytest.raises(ValueError):
            build_multichannel_canceller(n_channels=1, n_pes=0)
