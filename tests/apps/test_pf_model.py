"""Unit tests for the crack-growth model and sequential particle filter."""

import numpy as np
import pytest

from repro.apps.particle_filter import (
    CrackGrowthModel,
    FilterTrace,
    ParticleFilter,
    simulate_crack_history,
)


class TestCrackGrowthModel:
    def test_growth_is_monotone_in_length(self):
        model = CrackGrowthModel()
        assert model.growth_rate(4.0) > model.growth_rate(2.0)

    def test_propagate_increases_lengths(self):
        model = CrackGrowthModel(process_noise=0.0)
        rng = np.random.RandomState(0)
        lengths = np.array([2.0, 3.0, 4.0])
        advanced = model.propagate(lengths, rng)
        assert np.all(advanced > lengths)

    def test_propagate_rejects_nonpositive(self):
        model = CrackGrowthModel()
        with pytest.raises(ValueError):
            model.propagate(np.array([0.0]), np.random.RandomState(0))

    def test_likelihood_peaks_at_observation(self):
        model = CrackGrowthModel()
        lengths = np.array([1.0, 2.0, 3.0])
        weights = model.likelihood(2.0, lengths)
        assert np.argmax(weights) == 1
        assert weights[1] == pytest.approx(1.0)

    def test_initial_particles_positive(self):
        model = CrackGrowthModel(initial_spread=5.0)
        particles = model.initial_particles(1000, np.random.RandomState(1))
        assert np.all(particles > 0)

    def test_history_deterministic_per_seed(self):
        model = CrackGrowthModel()
        t1, o1 = simulate_crack_history(model, steps=5, seed=3)
        t2, o2 = simulate_crack_history(model, steps=5, seed=3)
        assert np.array_equal(t1, t2)
        assert np.array_equal(o1, o2)

    def test_history_is_growing(self):
        model = CrackGrowthModel(process_noise=0.0)
        truth, _ = simulate_crack_history(model, steps=20, seed=4)
        assert np.all(np.diff(truth) > 0)


class TestSequentialFilter:
    def test_tracks_truth(self, crack_setup):
        model, truth, observations = crack_setup
        pf = ParticleFilter(model, n_particles=200, seed=11)
        trace = pf.run(observations)
        assert trace.rmse_against(truth) < 2 * model.measurement_noise

    def test_beats_raw_observations(self):
        """Filtering should beat using the noisy observation directly."""
        model = CrackGrowthModel(measurement_noise=0.5)
        truth, observations = simulate_crack_history(model, steps=40, seed=9)
        pf = ParticleFilter(model, n_particles=500, seed=11)
        trace = pf.run(observations)
        raw_rmse = float(np.sqrt(np.mean((observations - truth) ** 2)))
        assert trace.rmse_against(truth) < raw_rmse

    def test_more_particles_do_not_hurt(self, crack_setup):
        model, truth, observations = crack_setup
        small = ParticleFilter(model, n_particles=20, seed=2).run(observations)
        large = ParticleFilter(model, n_particles=500, seed=2).run(observations)
        assert large.rmse_against(truth) <= small.rmse_against(truth) * 1.5

    def test_resampling_resets_weights(self, crack_setup):
        model, _, observations = crack_setup
        pf = ParticleFilter(model, n_particles=50, seed=1)
        pf.step(observations[0])
        assert np.allclose(pf.weights, 1.0 / 50)

    def test_effective_sample_size_bounds(self, crack_setup):
        model, _, observations = crack_setup
        pf = ParticleFilter(model, n_particles=100, seed=1)
        trace = pf.run(observations)
        assert all(0 < n <= 100 for n in trace.effective_sample_sizes)

    def test_minimum_particles(self):
        with pytest.raises(ValueError):
            ParticleFilter(CrackGrowthModel(), n_particles=1)

    def test_trace_length_mismatch_rejected(self):
        trace = FilterTrace(estimates=[1.0, 2.0])
        with pytest.raises(ValueError):
            trace.rmse_against([1.0])
