"""Unit and property tests for LU decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lpc.linalg import (
    SingularMatrixError,
    back_substitute,
    forward_substitute,
    lu_cycles,
    lu_decompose,
    lu_solve,
    solve,
)


class TestLuDecompose:
    def test_factorisation_reconstructs(self):
        rng = np.random.RandomState(0)
        a = rng.randn(6, 6)
        lower, upper, perm = lu_decompose(a)
        assert np.allclose(lower @ upper, a[perm], atol=1e-10)

    def test_lower_is_unit_triangular(self):
        a = np.random.RandomState(1).randn(5, 5)
        lower, upper, _ = lu_decompose(a)
        assert np.allclose(np.diag(lower), 1.0)
        assert np.allclose(np.triu(lower, 1), 0.0)
        assert np.allclose(np.tril(upper, -1), 0.0)

    def test_partial_pivoting_handles_zero_leading_pivot(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = solve(a, np.array([2.0, 3.0]))
        assert np.allclose(a @ x, [2.0, 3.0])

    def test_singular_rejected(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SingularMatrixError):
            lu_decompose(a)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            lu_decompose(np.zeros((2, 3)))


class TestSolve:
    def test_identity(self):
        x = solve(np.eye(4), np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.allclose(x, [1, 2, 3, 4])

    def test_matches_numpy(self):
        rng = np.random.RandomState(3)
        for n in (2, 5, 10):
            a = rng.randn(n, n) + n * np.eye(n)
            b = rng.randn(n)
            assert np.allclose(solve(a, b), np.linalg.solve(a, b), atol=1e-8)

    def test_reusable_factorisation(self):
        rng = np.random.RandomState(4)
        a = rng.randn(4, 4) + 4 * np.eye(4)
        lower, upper, perm = lu_decompose(a)
        for _ in range(3):
            b = rng.randn(4)
            x = lu_solve(lower, upper, perm, b)
            assert np.allclose(a @ x, b, atol=1e-8)

    def test_triangular_substitutions(self):
        lower = np.array([[1.0, 0.0], [0.5, 1.0]])
        y = forward_substitute(lower, np.array([2.0, 3.0]))
        assert np.allclose(lower @ y, [2.0, 3.0])
        upper = np.array([[2.0, 1.0], [0.0, 4.0]])
        x = back_substitute(upper, np.array([4.0, 8.0]))
        assert np.allclose(upper @ x, [4.0, 8.0])

    @given(n=st.integers(2, 8), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_residual_small_on_well_conditioned(self, n, seed):
        rng = np.random.RandomState(seed)
        a = rng.randn(n, n) + n * np.eye(n)  # diagonally dominated
        b = rng.randn(n)
        x = solve(a, b)
        assert np.linalg.norm(a @ x - b) < 1e-6 * max(1, np.linalg.norm(b))


class TestCycleModel:
    def test_cubic_growth(self):
        assert lu_cycles(16) > 4 * lu_cycles(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            lu_cycles(0)
