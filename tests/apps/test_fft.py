"""Unit and property tests for the radix-2 FFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lpc.fft import (
    fft,
    fft_cycles,
    ifft,
    is_power_of_two,
    power_spectrum,
)


class TestFft:
    def test_matches_numpy(self):
        rng = np.random.RandomState(0)
        for n in (1, 2, 8, 64, 256):
            x = rng.randn(n) + 1j * rng.randn(n)
            assert np.allclose(fft(x), np.fft.fft(x), atol=1e-9)

    def test_impulse_is_flat(self):
        x = np.zeros(16)
        x[0] = 1.0
        assert np.allclose(fft(x), np.ones(16), atol=1e-12)

    def test_dc_concentrates(self):
        spectrum = fft(np.ones(8))
        assert spectrum[0] == pytest.approx(8)
        assert np.allclose(spectrum[1:], 0, atol=1e-12)

    def test_single_tone_peaks_at_bin(self):
        n = 64
        tone = np.cos(2 * np.pi * 5 * np.arange(n) / n)
        ps = power_spectrum(tone)
        assert np.argmax(ps[: n // 2]) == 5

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            fft(np.zeros(12))

    def test_ifft_roundtrip(self):
        rng = np.random.RandomState(1)
        x = rng.randn(128) + 1j * rng.randn(128)
        assert np.allclose(ifft(fft(x)), x, atol=1e-9)

    @given(
        st.lists(
            st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, samples):
        """Energy is preserved (Parseval's theorem)."""
        x = np.asarray(samples)
        spectrum = fft(x)
        time_energy = np.sum(np.abs(x) ** 2)
        freq_energy = np.sum(np.abs(spectrum) ** 2) / x.shape[0]
        assert freq_energy == pytest.approx(time_energy, rel=1e-6, abs=1e-6)

    def test_linearity(self):
        rng = np.random.RandomState(2)
        a, b = rng.randn(32), rng.randn(32)
        assert np.allclose(fft(a + 2 * b), fft(a) + 2 * fft(b), atol=1e-9)


class TestCycleModel:
    def test_grows_n_log_n(self):
        assert fft_cycles(2) == 1 * 4 + 2
        assert fft_cycles(8) == 4 * 3 * 4 + 8
        assert fft_cycles(1024) > fft_cycles(512) * 2  # superlinear

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            fft_cycles(100)

    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
