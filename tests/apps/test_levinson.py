"""Unit tests for the Levinson–Durbin recursion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lpc.levinson import levinson_cycles, levinson_durbin
from repro.apps.lpc.linalg import lu_cycles
from repro.apps.lpc.lpc import autocorrelation, lpc_coefficients
from repro.apps.lpc.signal_gen import SpeechLikeSource, ar_filter


class TestLevinson:
    def test_matches_lu_solution(self):
        """Both solvers answer the same normal equations."""
        frame = SpeechLikeSource(seed=5).samples(512)
        order = 8
        via_lu = lpc_coefficients(frame, order)
        r = autocorrelation(frame, order)
        via_levinson = levinson_durbin(r, order).coefficients
        assert np.allclose(via_levinson, via_lu, atol=1e-6)

    def test_recovers_ar_coefficients(self):
        truth = np.array([1.1, -0.5])
        rng = np.random.RandomState(6)
        signal = ar_filter(rng.randn(8192) * 0.1, truth)
        r = autocorrelation(signal, 2)
        result = levinson_durbin(r, 2)
        assert np.allclose(result.coefficients, truth, atol=0.05)

    def test_reflection_coefficients_stable_for_real_signal(self):
        frame = SpeechLikeSource(seed=7).samples(512)
        result = levinson_durbin(autocorrelation(frame, 10), 10)
        assert result.is_minimum_phase

    def test_error_power_decreases_with_order(self):
        frame = SpeechLikeSource(seed=8).samples(1024)
        r = autocorrelation(frame, 12)
        errors = [
            levinson_durbin(r, order).error_power for order in (1, 4, 8, 12)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_degenerate_frame(self):
        result = levinson_durbin(np.zeros(5), 4)
        assert np.allclose(result.coefficients, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            levinson_durbin([1.0, 0.5], 3)  # too few lags
        with pytest.raises(ValueError):
            levinson_durbin([1.0, 0.5], 0)

    @given(order=st.integers(1, 12), seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_agreement_property(self, order, seed):
        """LU and Levinson agree on random well-conditioned frames."""
        rng = np.random.RandomState(seed)
        frame = ar_filter(rng.randn(512), np.array([0.6, -0.2]))
        via_lu = lpc_coefficients(frame, order)
        via_lev = levinson_durbin(
            autocorrelation(frame, order), order
        ).coefficients
        assert np.allclose(via_lev, via_lu, atol=1e-4)


class TestCycleModel:
    def test_quadratic_vs_cubic(self):
        """The design-choice ablation: Levinson's O(M^2) beats LU's
        O(M^3) for every realistic order, and the gap widens."""
        for order in (4, 8, 16, 32):
            assert levinson_cycles(order) < lu_cycles(order)
        gap8 = lu_cycles(8) / levinson_cycles(8)
        gap32 = lu_cycles(32) / levinson_cycles(32)
        assert gap32 > gap8

    def test_validation(self):
        with pytest.raises(ValueError):
            levinson_cycles(0)
