"""Vectorized host kernels vs their per-firing references.

The batched accelerator dispatch runs one numpy-vectorized kernel over
B queued firings.  Where the vectorized form reproduces the exact
operand pairing of the scalar kernel (FFT butterflies, elementwise
likelihoods, integer bincount) the rows must be *bit-identical*; where
float summation order legitimately differs (einsum autocorrelation,
per-lag prediction) the contract is ``allclose``.
"""

import numpy as np
import pytest

from repro.apps.lpc.actors import SpectralAnalyzer
from repro.apps.lpc.fft import (
    fft,
    fft_batch,
    power_spectrum,
    power_spectrum_batch,
)
from repro.apps.lpc.lpc import (
    autocorrelation,
    autocorrelation_batch,
    lpc_coefficients,
    predict,
    predict_batch,
    prediction_error,
    prediction_error_batch,
)
from repro.apps.particle_filter.model import CrackGrowthModel
from repro.apps.particle_filter.resampling import (
    _multiplicities_loop,
    multiplicities,
)

RNG = np.random.default_rng(7)


def speech_frames(count, size):
    t = np.arange(size) / size
    return np.stack(
        [
            np.sin(2 * np.pi * (3 + k) * t)
            + 0.3 * RNG.standard_normal(size)
            for k in range(count)
        ]
    )


class TestFftBatch:
    def test_rows_bit_identical_to_scalar_fft(self):
        frames = RNG.standard_normal((8, 64)) + 1j * RNG.standard_normal(
            (8, 64)
        )
        batched = fft_batch(frames)
        for row, frame in zip(batched, frames):
            assert np.array_equal(row, fft(frame))

    def test_length_one(self):
        frames = np.array([[1.0 + 2j], [3.0 - 1j]])
        assert np.array_equal(fft_batch(frames), frames)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            fft_batch(np.zeros((2, 12)))

    def test_power_spectrum_rows_bit_identical(self):
        frames = speech_frames(5, 128)
        batched = power_spectrum_batch(frames)
        for row, frame in zip(batched, frames):
            assert np.array_equal(row, power_spectrum(frame))

    def test_analyzer_batch_matches_per_firing_kernel(self):
        # actor B zero-pads to the next power of two before the FFT;
        # the batched host kernel must reproduce that exactly
        analyzer = SpectralAnalyzer()
        frames = speech_frames(4, 100)  # pads to 128
        batched = analyzer.analyze_batch(frames)
        for row, frame in zip(batched, frames):
            out = analyzer.kernel(0, {"frame": [{"frame": frame}]})
            assert np.array_equal(row, out["analyzed"][0]["spectrum"])


class TestLpcBatch:
    def test_autocorrelation_rows_close(self):
        frames = speech_frames(6, 64)
        batched = autocorrelation_batch(frames, lags=8)
        for row, frame in zip(batched, frames):
            assert np.allclose(row, autocorrelation(frame, lags=8))

    def test_autocorrelation_short_frames_rejected(self):
        with pytest.raises(ValueError, match="longer than"):
            autocorrelation_batch(np.zeros((2, 8)), lags=8)

    def test_predict_and_error_rows_close(self):
        frames = speech_frames(4, 64)
        coefficients = np.stack(
            [lpc_coefficients(frame, order=6) for frame in frames]
        )
        predicted = predict_batch(frames, coefficients)
        errors = prediction_error_batch(frames, coefficients)
        for i, frame in enumerate(frames):
            assert np.allclose(predicted[i], predict(frame, coefficients[i]))
            assert np.allclose(
                errors[i], prediction_error(frame, coefficients[i])
            )

    def test_batch_mismatch_rejected(self):
        with pytest.raises(ValueError, match="batch mismatch"):
            predict_batch(np.zeros((3, 16)), np.zeros((2, 4)))


class TestParticleFilterBatch:
    def test_likelihood_rows_bit_identical(self):
        # the expression is elementwise: batching changes no summation
        # order, so rows must match the scalar kernel exactly
        model = CrackGrowthModel()
        lengths = 1.0 + np.abs(RNG.standard_normal((5, 40)))
        observations = 1.0 + np.abs(RNG.standard_normal(5))
        batched = model.likelihood_batch(observations, lengths)
        for b in range(5):
            assert np.array_equal(
                batched[b], model.likelihood(observations[b], lengths[b])
            )

    def test_likelihood_batch_mismatch_rejected(self):
        model = CrackGrowthModel()
        with pytest.raises(ValueError, match="batch mismatch"):
            model.likelihood_batch(np.ones(3), np.ones((2, 10)))

    def test_multiplicities_exactly_match_loop(self):
        indices = RNG.integers(0, 100, size=500)
        assert np.array_equal(
            multiplicities(indices, population=100),
            _multiplicities_loop(indices, population=100),
        )

    def test_multiplicities_empty(self):
        assert np.array_equal(
            multiplicities([], population=4),
            _multiplicities_loop([], population=4),
        )

    def test_multiplicities_out_of_range_parity(self):
        for bad in ([5], [-1]):
            with pytest.raises(ValueError, match="out of range"):
                multiplicities(bad, population=5)
            with pytest.raises(ValueError, match="out of range"):
                _multiplicities_loop(bad, population=5)
