"""Unit tests for the two application graph builders."""

import pytest

from repro.apps.lpc import build_adc_graph, build_parallel_error_graph
from repro.apps.particle_filter import build_particle_filter_graph, resample_offset
from repro.dataflow import repetitions_vector, vts_convert


class TestAdcGraph:
    def test_five_actor_chain(self, speech_frames):
        adc = build_adc_graph(speech_frames, order=8)
        assert {a.name for a in adc.graph} == {"A", "B", "C", "D", "E"}
        assert len(adc.graph.edges) == 4
        reps = repetitions_vector(adc.graph)
        assert all(count == 1 for count in reps.values())

    def test_actors_have_resource_estimates(self, speech_frames):
        adc = build_adc_graph(speech_frames, order=8)
        for actor in adc.graph:
            assert "resources" in actor.params

    def test_kernels_compose_functionally(self, speech_frames):
        adc = build_adc_graph(speech_frames, order=8)
        token = adc.graph.get_actor("A").fire(0, {})["frame"]
        token = adc.graph.get_actor("B").fire(0, {"frame": token})["analyzed"]
        token = adc.graph.get_actor("C").fire(0, {"analyzed": token})["model"]
        assert token[0]["coefficients"].shape == (8,)
        token = adc.graph.get_actor("D").fire(0, {"model": token})["errors"]
        adc.graph.get_actor("E").fire(0, {"errors": token})
        assert len(adc.encoder.compressed) == 1


class TestParallelErrorGraph:
    def test_structure_per_unit(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=3)
        assert len(system.graph) == 9  # 3 x (io_src, D, io_snk)
        assert system.partition.n_pes == 4  # I/O PE + 3 error PEs

    def test_all_cross_edges_dynamic(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        for edge in system.partition.interprocessor_edges():
            assert edge.is_dynamic

    def test_vts_conversion_applies(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        conversion = vts_convert(system.graph)
        reps = repetitions_vector(conversion.graph)
        assert all(count == 1 for count in reps.values())

    def test_assembled_errors_requires_all_units(self, speech_frames):
        system = build_parallel_error_graph(speech_frames, order=8, n_units=2)
        with pytest.raises(ValueError, match="sections"):
            system.assembled_errors(0, 256)

    def test_unit_count_validated(self, speech_frames):
        with pytest.raises(ValueError):
            build_parallel_error_graph(speech_frames, order=8, n_units=0)


class TestParticleFilterGraph:
    def test_structure_per_pe(self, crack_setup):
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=40, n_pes=2
        )
        names = {a.name for a in system.graph}
        for pe in (0, 1):
            for stage in ("E", "U", "S1", "S2", "S3"):
                assert f"{stage}_{pe}" in names

    def test_cross_pe_channel_kinds(self, crack_setup):
        """Weight sums are static edges, particle exchanges dynamic —
        exactly the paper's SPI_static/SPI_dynamic split."""
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=40, n_pes=2
        )
        crossing = system.partition.interprocessor_edges()
        wsum_edges = [e for e in crossing if e.name.startswith("wsum")]
        particle_edges = [
            e for e in crossing if e.name.startswith("particles")
        ]
        assert len(wsum_edges) == 2
        assert len(particle_edges) == 2
        assert all(not e.is_dynamic for e in wsum_edges)
        assert all(e.is_dynamic for e in particle_edges)

    def test_initial_particles_on_feedback(self, crack_setup):
        model, _, observations = crack_setup
        system = build_particle_filter_graph(
            model, observations, n_particles=40, n_pes=2
        )
        feedback = system.graph.edge_between("S3_0", "E_0")
        assert feedback.delay == 20
        assert len(feedback.initial_tokens) == 20

    def test_divisibility_enforced(self, crack_setup):
        model, _, observations = crack_setup
        with pytest.raises(ValueError, match="divide"):
            build_particle_filter_graph(
                model, observations, n_particles=25, n_pes=2
            )

    def test_resample_offset_deterministic_and_valid(self):
        seen = {resample_offset(k) for k in range(100)}
        assert all(0 <= v < 1 for v in seen)
        assert len(seen) > 50  # spreads over [0, 1)
        assert resample_offset(7) == resample_offset(7)
