"""Unit and property tests for Huffman coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lpc.huffman import (
    HuffmanCode,
    build_huffman_code,
    huffman_cycles,
)


class TestBuild:
    def test_skewed_frequencies_get_short_codes(self):
        code = build_huffman_code({"a": 100, "b": 10, "c": 1})
        book = code.codebook
        assert len(book["a"]) <= len(book["b"]) <= len(book["c"])

    def test_single_symbol_gets_one_bit(self):
        code = build_huffman_code({"x": 42})
        assert code.codebook == {"x": "0"}
        assert code.decode(code.encode(["x", "x"])) == ["x", "x"]

    def test_uniform_frequencies_balanced(self):
        code = build_huffman_code({s: 1 for s in "abcd"})
        assert all(len(c) == 2 for c in code.codebook.values())

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_huffman_code({})

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            build_huffman_code({"a": -1})

    def test_deterministic(self):
        freqs = {"a": 3, "b": 3, "c": 2, "d": 2}
        first = build_huffman_code(freqs).codebook
        second = build_huffman_code(freqs).codebook
        assert first == second


class TestCodec:
    def test_roundtrip(self):
        code = build_huffman_code({"a": 5, "b": 3, "c": 1})
        message = list("abacabaa")
        assert code.decode(code.encode(message)) == message

    def test_unknown_symbol_rejected(self):
        code = build_huffman_code({"a": 1, "b": 1})
        with pytest.raises(KeyError):
            code.encode(["z"])

    def test_dangling_bits_rejected(self):
        code = build_huffman_code({"a": 5, "b": 3, "c": 1})
        longest = max(code.codebook.values(), key=len)
        bits = code.encode(["a", "b"]) + longest[:-1]  # truncated code
        with pytest.raises(ValueError, match="dangling"):
            code.decode(bits)

    def test_invalid_bit_rejected(self):
        code = build_huffman_code({"a": 1, "b": 1})
        with pytest.raises(ValueError, match="invalid bit"):
            code.decode("02")

    def test_prefix_freeness_enforced(self):
        with pytest.raises(ValueError, match="prefix"):
            HuffmanCode({"a": "0", "b": "01"})

    def test_encoded_bits_and_mean_length(self):
        code = build_huffman_code({"a": 3, "b": 1})
        assert code.encoded_bits(["a", "a", "b"]) == len(code.encode("aab"))
        mean = code.mean_code_length({"a": 3, "b": 1})
        assert mean == pytest.approx(1.0)  # both codes are 1 bit


class TestOptimality:
    def test_beats_fixed_width_on_skewed_input(self):
        """Compression: a skewed distribution must beat log2(n) bits."""
        import math

        freqs = {0: 1000, 1: 100, 2: 10, 3: 1}
        code = build_huffman_code(freqs)
        fixed_bits = math.ceil(math.log2(len(freqs)))
        assert code.mean_code_length(freqs) < fixed_bits

    @given(
        st.dictionaries(
            st.integers(0, 30),
            st.integers(1, 100),
            min_size=1,
            max_size=12,
        ),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, freqs, data):
        code = build_huffman_code(freqs)
        symbols = data.draw(
            st.lists(st.sampled_from(sorted(freqs)), max_size=50)
        )
        assert code.decode(code.encode(symbols)) == symbols

    @given(
        st.dictionaries(
            st.integers(0, 20), st.integers(1, 50), min_size=2, max_size=10
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_kraft_inequality(self, freqs):
        """Any prefix code satisfies Kraft's inequality; an optimal
        (complete) Huffman code meets it with equality."""
        code = build_huffman_code(freqs)
        kraft = sum(2 ** -len(c) for c in code.codebook.values())
        assert kraft == pytest.approx(1.0)


class TestBitPacking:
    def test_roundtrip(self):
        from repro.apps.lpc.huffman import pack_bits, unpack_bits

        for bits in ("", "1", "10110", "0" * 8, "1" * 17, "01" * 100):
            assert unpack_bits(pack_bits(bits)) == bits

    def test_packed_size(self):
        from repro.apps.lpc.huffman import pack_bits

        assert len(pack_bits("1" * 16)) == 4 + 2
        assert len(pack_bits("1" * 17)) == 4 + 3

    def test_invalid_bits_rejected(self):
        from repro.apps.lpc.huffman import pack_bits

        with pytest.raises(ValueError):
            pack_bits("10x")

    def test_truncated_stream_rejected(self):
        from repro.apps.lpc.huffman import pack_bits, unpack_bits

        packed = pack_bits("1" * 64)
        with pytest.raises(ValueError, match="truncated"):
            unpack_bits(packed[:-2])
        with pytest.raises(ValueError, match="length prefix"):
            unpack_bits(b"\x00")

    @given(st.text(alphabet="01", max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, bits):
        from repro.apps.lpc.huffman import pack_bits, unpack_bits

        assert unpack_bits(pack_bits(bits)) == bits

    def test_end_to_end_with_code(self):
        """symbols -> Huffman bits -> bytes -> bits -> symbols."""
        from repro.apps.lpc.huffman import pack_bits, unpack_bits

        code = build_huffman_code({"a": 9, "b": 3, "c": 1})
        message = list("abacabacba")
        wire = pack_bits(code.encode(message))
        assert code.decode(unpack_bits(wire)) == message


class TestCycleModel:
    def test_linear_in_samples(self):
        assert huffman_cycles(200) - huffman_cycles(100) == 200
