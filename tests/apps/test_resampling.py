"""Unit and property tests for sequential and distributed resampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.particle_filter.resampling import (
    allocate_targets,
    local_resample,
    multinomial_resample,
    multiplicities,
    plan_exchanges,
    systematic_resample,
)


class TestSystematicResample:
    def test_count_and_range(self):
        indices = systematic_resample([1, 2, 3], count=12, offset=0.5)
        assert indices.shape == (12,)
        assert indices.min() >= 0
        assert indices.max() <= 2

    def test_multiplicity_proportional_to_weight(self):
        """Systematic resampling replicates within one of the exact
        proportional share (the paper's 'multiplicities proportional to
        their previous weights')."""
        weights = np.array([1.0, 3.0])
        indices = systematic_resample(weights, count=100, offset=0.25)
        counts = multiplicities(indices, 2)
        assert abs(counts[0] - 25) <= 1
        assert abs(counts[1] - 75) <= 1

    def test_degenerate_weights_fall_back_uniform(self):
        indices = systematic_resample([0.0, 0.0], count=4, offset=0.0)
        assert indices.shape == (4,)

    def test_zero_count(self):
        assert systematic_resample([1.0], 0, 0.0).shape == (0,)

    def test_offset_validated(self):
        with pytest.raises(ValueError):
            systematic_resample([1.0], 1, 1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            systematic_resample([-1.0, 1.0], 2, 0.0)

    @given(
        weights=st.lists(st.floats(0.01, 10), min_size=1, max_size=20),
        count=st.integers(1, 200),
        offset=st.floats(0, 0.999),
    )
    @settings(max_examples=60, deadline=None)
    def test_proportionality_property(self, weights, count, offset):
        """Every particle's replica count is within 1 of its exact share."""
        indices = systematic_resample(weights, count, offset)
        counts = multiplicities(indices, len(weights))
        total = sum(weights)
        # the within-1 bound holds in exact arithmetic; the float share
        # can land an epsilon below/above it (cumulative-sum rounding)
        tolerance = 1e-9 * count
        for i, w in enumerate(weights):
            share = count * w / total
            assert share - 1 - tolerance <= counts[i] <= share + 1 + tolerance


class TestMultinomial:
    def test_count(self):
        rng = np.random.RandomState(0)
        indices = multinomial_resample([1, 1, 1], 30, rng)
        assert indices.shape == (30,)

    def test_concentrates_on_heavy_particle(self):
        rng = np.random.RandomState(1)
        indices = multinomial_resample([0.001, 1000.0], 100, rng)
        assert multiplicities(indices, 2)[1] > 95


class TestAllocateTargets:
    def test_proportional_split(self):
        targets = allocate_targets([1.0, 3.0], total_count=100)
        assert targets == [25, 75]

    def test_sums_to_total(self):
        targets = allocate_targets([1.0, 1.0, 1.0], total_count=100)
        assert sum(targets) == 100

    def test_zero_total_weight_uniform(self):
        targets = allocate_targets([0.0, 0.0, 0.0], total_count=10)
        assert sum(targets) == 10
        assert max(targets) - min(targets) <= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            allocate_targets([-1.0, 2.0], 10)

    @given(
        sums=st.lists(st.floats(0, 100), min_size=1, max_size=8),
        per_pe=st.integers(1, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_property(self, sums, per_pe):
        n = len(sums)
        targets = allocate_targets(sums, total_count=per_pe * n)
        assert sum(targets) == per_pe * n
        assert all(t >= 0 for t in targets)


class TestPlanExchanges:
    def test_balanced_targets_no_flows(self):
        plan = plan_exchanges([10, 10], capacity=10)
        assert plan.kept == (10, 10)
        assert all(all(f == 0 for f in row) for row in plan.flows)

    def test_surplus_routes_to_deficit(self):
        plan = plan_exchanges([15, 5], capacity=10)
        assert plan.kept == (10, 5)
        assert plan.flows[0][1] == 5
        assert plan.sent_by(0) == 5
        assert plan.received_by(1) == 5

    def test_multiway(self):
        plan = plan_exchanges([18, 2, 10], capacity=10)
        assert plan.kept == (10, 2, 10)
        assert plan.flows[0][1] == 8
        assert plan.sent_by(2) == 0

    def test_imbalance_rejected(self):
        with pytest.raises(ValueError):
            plan_exchanges([5, 5], capacity=10)

    @given(
        data=st.data(),
        n=st.integers(1, 6),
        capacity=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_pe_ends_at_capacity(self, data, n, capacity):
        """Conservation: kept + received == capacity at every PE."""
        total = capacity * n
        # random composition of `total` over n PEs
        cuts = sorted(
            data.draw(
                st.lists(st.integers(0, total), min_size=n - 1, max_size=n - 1)
            )
        )
        targets = []
        previous = 0
        for cut in cuts + [total]:
            targets.append(cut - previous)
            previous = cut
        plan = plan_exchanges(targets, capacity)
        for pe in range(n):
            assert plan.kept[pe] + plan.received_by(pe) == capacity
            assert plan.kept[pe] + plan.sent_by(pe) == targets[pe]


class TestLocalResample:
    def test_replicates_heavy_particles(self):
        particles = np.array([1.0, 2.0])
        weights = np.array([0.0, 1.0])
        replicas = local_resample(particles, weights, target=5, offset=0.5)
        assert np.all(replicas == 2.0)

    def test_target_zero(self):
        replicas = local_resample(np.array([1.0]), np.array([1.0]), 0, 0.0)
        assert replicas.shape == (0,)
