"""Unit tests for LPC analysis, residuals and quantisation."""

import numpy as np
import pytest

from repro.apps.lpc.lpc import (
    Quantizer,
    autocorr_cycles,
    autocorrelation,
    error_cycles,
    lpc_coefficients,
    normal_equations,
    predict,
    prediction_error,
    reconstruct,
)
from repro.apps.lpc.signal_gen import SpeechLikeSource, ar_filter, frame_stream


class TestAutocorrelation:
    def test_lag_zero_is_energy(self):
        x = np.array([1.0, -2.0, 3.0])
        r = autocorrelation(x, 1)
        assert r[0] == pytest.approx(14.0)

    def test_known_lags(self):
        x = np.array([1.0, 1.0, 1.0, 1.0])
        r = autocorrelation(x, 2)
        assert list(r) == [4.0, 3.0, 2.0]

    def test_lags_must_fit(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros(4), 4)

    def test_normal_equations_toeplitz(self):
        r = np.array([4.0, 2.0, 1.0])
        matrix, rhs = normal_equations(r)
        assert matrix.tolist() == [[4.0, 2.0], [2.0, 4.0]]
        assert rhs.tolist() == [2.0, 1.0]


class TestLpcAnalysis:
    def test_recovers_ar_process(self):
        """LPC of a noiseless AR(2) process recovers the AR coefficients."""
        true_coefs = np.array([1.2, -0.6])
        rng = np.random.RandomState(5)
        excitation = rng.randn(4096) * 0.01
        signal = ar_filter(excitation, true_coefs)
        estimated = lpc_coefficients(signal, order=2)
        assert np.allclose(estimated, true_coefs, atol=0.05)

    def test_prediction_gain_on_speech_like_signal(self):
        """The residual must be much smaller than the signal (that is
        the entire point of LPC compression)."""
        frame = SpeechLikeSource(seed=3).samples(512)
        errors = prediction_error(frame, lpc_coefficients(frame, 10))
        gain = np.var(frame) / max(np.var(errors), 1e-12)
        assert gain > 10.0

    def test_silent_frame_degenerates_to_zero_predictor(self):
        coefs = lpc_coefficients(np.zeros(64), order=4)
        assert np.allclose(coefs, 0.0)

    def test_error_reconstruct_roundtrip(self):
        frame = SpeechLikeSource(seed=4).samples(256)
        coefs = lpc_coefficients(frame, 8)
        errors = prediction_error(frame, coefs)
        rebuilt = reconstruct(errors, coefs)
        assert np.allclose(rebuilt, frame, atol=1e-9)

    def test_predict_uses_available_history_at_start(self):
        coefs = np.array([0.5])
        frame = np.array([2.0, 4.0, 8.0])
        predicted = predict(frame, coefs)
        assert predicted[0] == 0.0
        assert predicted[1] == 1.0
        assert predicted[2] == 2.0


class TestQuantizer:
    def test_roundtrip_error_within_half_step(self):
        quantizer = Quantizer(bits=8, full_scale=1.0)
        values = np.linspace(-1, 1, 101)
        rebuilt = quantizer.dequantize(quantizer.quantize(values))
        assert np.max(np.abs(rebuilt - values)) <= quantizer.step / 2 + 1e-12

    def test_clipping(self):
        quantizer = Quantizer(bits=4, full_scale=1.0)
        codes = quantizer.quantize(np.array([10.0, -10.0]))
        assert codes[0] == quantizer.levels - 1
        assert codes[1] == 0

    def test_codes_in_range(self):
        quantizer = Quantizer(bits=6)
        codes = quantizer.quantize(np.random.RandomState(0).randn(100))
        assert codes.min() >= 0
        assert codes.max() < quantizer.levels

    def test_dequantize_range_checked(self):
        quantizer = Quantizer(bits=4)
        with pytest.raises(ValueError):
            quantizer.dequantize([16])

    def test_validation(self):
        with pytest.raises(ValueError):
            Quantizer(bits=1)
        with pytest.raises(ValueError):
            Quantizer(full_scale=0)


class TestCycleModels:
    def test_error_cycles_scale_with_samples_and_order(self):
        assert error_cycles(100, 8) > error_cycles(50, 8)
        assert error_cycles(100, 16) > error_cycles(100, 8)

    def test_autocorr_cycles_scale(self):
        assert autocorr_cycles(512, 8) > autocorr_cycles(256, 8)


class TestSignalGen:
    def test_deterministic(self):
        a = SpeechLikeSource(seed=9).samples(128)
        b = SpeechLikeSource(seed=9).samples(128)
        assert np.array_equal(a, b)

    def test_peak_normalised(self):
        signal = SpeechLikeSource(seed=9, peak=0.9).samples(256)
        assert np.max(np.abs(signal)) <= 0.9 + 1e-12

    def test_frame_stream_shapes(self):
        frames = frame_stream(total_samples=1000, frame_size=256)
        assert len(frames) == 3
        assert all(f.shape == (256,) for f in frames)

    def test_frame_stream_too_short(self):
        with pytest.raises(ValueError):
            frame_stream(total_samples=10, frame_size=256)
