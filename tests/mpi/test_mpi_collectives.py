"""MPI baseline tests for collective connections.

The baseline's MPI_Bcast-style path amortizes the *software* send cost
(one copy out of user space per firing) but still injects one eager
message per destination rank — there is no wire-level payload sharing,
which is exactly the contrast the SPI collectives exploit.
"""

from repro.dataflow import DataflowGraph
from repro.mapping import Partition
from repro.mpi import MpiConfig, MpiSystem


def _broadcast_graph(collected, n_sinks=2, rate=2):
    graph = DataflowGraph("bcast")
    src = graph.actor(
        "src", kernel=lambda k, ins: {"o": [k * 10 + j for j in range(rate)]},
        cycles=10,
    )
    src.add_output("o", rate=rate)
    for j in range(n_sinks):

        def sink(k, ins, j=j):
            collected[j].extend(ins["i"])
            return {}

        snk = graph.actor(f"snk{j}", kernel=sink, cycles=5)
        snk.add_input("i", rate=rate)
    graph.add_broadcast("src.o", [f"snk{j}.i" for j in range(n_sinks)])
    return graph


class TestBroadcast:
    def test_every_rank_receives_the_full_copy(self):
        collected = {0: [], 1: [], 2: []}
        graph = _broadcast_graph(collected, n_sinks=3)
        partition = Partition.manual(
            graph, {"src": 0, "snk0": 1, "snk1": 2, "snk2": 0}
        )
        MpiSystem.compile(graph, partition).run(iterations=3)
        expected = [0, 1, 10, 11, 20, 21]
        assert collected[0] == expected
        assert collected[1] == expected
        assert collected[2] == expected

    def test_one_message_per_destination_rank(self):
        """No wire sharing in the baseline: 2 remote ranks x 4 firings
        means 8 data messages even though the payload is identical."""
        collected = {0: [], 1: []}
        graph = _broadcast_graph(collected, n_sinks=2)
        partition = Partition.manual(graph, {"src": 0, "snk0": 1, "snk1": 2})
        result = MpiSystem.compile(graph, partition).run(iterations=4)
        assert result.data_messages == 8

    def test_collective_branches_forced_eager(self):
        """Rendezvous would serialize the fan-out on RTS/CTS round trips,
        so collective origins stay on the eager path regardless of size."""
        graph = DataflowGraph("big")
        src = graph.actor("src", cycles=10)
        src.add_output("o", rate=200)
        for j in range(2):
            snk = graph.actor(f"snk{j}", cycles=5)
            snk.add_input("i", rate=200)
        graph.add_broadcast("src.o", ["snk0.i", "snk1.i"])
        partition = Partition.manual(graph, {"src": 0, "snk0": 1, "snk1": 2})
        system = MpiSystem.compile(
            graph, partition, MpiConfig(eager_threshold_bytes=64)
        )
        assert not any(system.channel_modes.values())
        result = system.run(iterations=2)
        assert result.ack_messages == 0  # eager: no RTS/CTS traffic


class TestGatherReduce:
    def test_gather_assembles_at_the_root(self):
        collected = []
        graph = DataflowGraph("gath")
        for j in range(2):
            src = graph.actor(
                f"src{j}",
                kernel=(lambda j: lambda k, ins: {"o": [j]})(j),
                cycles=5,
            )
            src.add_output("o", rate=1)
        snk = graph.actor(
            "snk",
            kernel=lambda k, ins: collected.append(list(ins["i"])) or {},
            cycles=10,
        )
        snk.add_input("i", rate=2)
        graph.add_gather(["src0.o", "src1.o"], "snk.i")
        partition = Partition.manual(graph, {"src0": 0, "src1": 1, "snk": 2})
        MpiSystem.compile(graph, partition).run(iterations=3)
        assert collected == [[0, 1]] * 3

    def test_reduce_combines_at_the_root(self):
        collected = []
        graph = DataflowGraph("red")
        for j in range(3):
            src = graph.actor(
                f"src{j}",
                kernel=(lambda j: lambda k, ins: {"o": [j + 1]})(j),
                cycles=5,
            )
            src.add_output("o", rate=1)
        snk = graph.actor(
            "snk",
            kernel=lambda k, ins: collected.append(ins["i"][0]) or {},
            cycles=10,
        )
        snk.add_input("i", rate=1)
        graph.add_reduce(["src0.o", "src1.o", "src2.o"], "snk.i")
        partition = Partition.manual(
            graph, {"src0": 0, "src1": 1, "src2": 2, "snk": 0}
        )
        MpiSystem.compile(graph, partition).run(iterations=2)
        assert collected == [6, 6]
