"""Additional MPI-baseline coverage: rendezvous details, dynamic graphs,
mixed networks, and fairness of the comparison."""


from repro.dataflow import DataflowGraph, DynamicRate
from repro.mapping import Partition
from repro.mpi import MpiConfig, MpiSystem
from repro.spi import SpiSystem


def fan_graph(rates=(1, 200)):
    """One producer feeding two consumers with different message sizes:
    a mixed eager/rendezvous network."""
    graph = DataflowGraph("fan")
    a = graph.actor("A", cycles=10)
    small = graph.actor("small", cycles=10)
    big = graph.actor("big", cycles=10)
    a.add_output("s", rate=rates[0])
    a.add_output("b", rate=rates[1])
    small.add_input("i", rate=rates[0])
    big.add_input("i", rate=rates[1])
    graph.connect((a, "s"), (small, "i"))
    graph.connect((a, "b"), (big, "i"))
    partition = Partition.manual(graph, {"A": 0, "small": 1, "big": 2})
    return graph, partition


class TestMixedNetwork:
    def test_modes_per_channel(self):
        graph, partition = fan_graph()
        system = MpiSystem.compile(graph, partition)
        modes = system.channel_modes
        assert modes["A.s->small.i"] is False  # eager
        assert modes["A.b->big.i"] is True  # rendezvous

    def test_mixed_network_completes(self):
        graph, partition = fan_graph()
        result = MpiSystem.compile(graph, partition).run(iterations=8)
        assert result.data_messages == 16
        # only the rendezvous channel generates RTS/CTS control traffic
        assert result.ack_messages == 16


class TestRendezvousTiming:
    def test_rendezvous_adds_round_trip(self):
        """The same payload moved eagerly (threshold raised) must be
        faster than via rendezvous (threshold lowered)."""

        def build():
            graph = DataflowGraph("p")
            a = graph.actor("A", cycles=10)
            b = graph.actor("B", cycles=10)
            a.add_output("o", rate=100)
            b.add_input("i", rate=100)
            graph.connect((a, "o"), (b, "i"))
            return graph, Partition.manual(graph, {"A": 0, "B": 1})

        graph, partition = build()
        eager = MpiSystem.compile(
            graph, partition, MpiConfig(eager_threshold_bytes=100000)
        ).run(iterations=10)
        graph, partition = build()
        rendezvous = MpiSystem.compile(
            graph, partition, MpiConfig(eager_threshold_bytes=1)
        ).run(iterations=10)
        assert rendezvous.execution_time_us > eager.execution_time_us
        assert rendezvous.ack_messages == 20
        assert eager.ack_messages == 0


class TestDynamicGraphs:
    def test_mpi_handles_vts_graphs(self):
        """The baseline also rides on VTS conversion for dynamic rates —
        both layers see identical applications."""
        graph = DataflowGraph("dyn")

        def burst(k, inputs):
            return {"o": list(range(k % 3 + 1))}

        a = graph.actor("A", kernel=burst, cycles=5)
        b = graph.actor("B", cycles=5)
        a.add_output("o", rate=DynamicRate(4), token_bytes=2)
        b.add_input("i", rate=DynamicRate(4), token_bytes=2)
        graph.connect((a, "o"), (b, "i"))
        partition = Partition(graph, 2, {"A": 0, "B": 1})
        result = MpiSystem.compile(graph, partition).run(iterations=6)
        assert result.data_messages == 6
        assert result.payload_bytes == (1 + 2 + 3) * 2 * 2


class TestFairness:
    def test_same_functional_results_as_spi(self):
        """Identical output values through either layer."""
        def build(collect):
            graph = DataflowGraph("f")

            def src(k, inputs):
                return {"o": [k * k]}

            def snk(k, inputs):
                collect.append(inputs["i"][0])
                return {}

            a = graph.actor("A", kernel=src, cycles=5)
            b = graph.actor("B", kernel=snk, cycles=5)
            a.add_output("o")
            b.add_input("i")
            graph.connect((a, "o"), (b, "i"))
            return graph, Partition.manual(graph, {"A": 0, "B": 1})

        spi_out, mpi_out = [], []
        graph, partition = build(spi_out)
        SpiSystem.compile(graph, partition).run(iterations=6)
        graph, partition = build(mpi_out)
        MpiSystem.compile(graph, partition).run(iterations=6)
        assert spi_out == mpi_out == [0, 1, 4, 9, 16, 25]

    def test_same_platform_parameters(self):
        """Both layers default to the same link model and clock — the
        comparison isolates protocol overhead only."""
        from repro.spi import SpiConfig

        spi, mpi = SpiConfig(), MpiConfig()
        assert spi.link_spec == mpi.link_spec
        assert spi.clock == mpi.clock
