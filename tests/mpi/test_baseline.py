"""Unit/integration tests for the MPI-like baseline layer."""

import pytest

from repro.dataflow import DataflowGraph
from repro.mapping import Partition
from repro.mpi import MpiConfig, MpiSystem, mpi_engine_cost
from repro.spi import SpiSystem
from tests.conftest import build_payload_pipeline as pipeline


class TestCompile:
    def test_small_messages_go_eager(self):
        graph, partition = pipeline(payload_rate=1)
        system = MpiSystem.compile(graph, partition)
        assert all(not rv for rv in system.channel_modes.values())

    def test_large_messages_go_rendezvous(self):
        graph, partition = pipeline(payload_rate=200)
        system = MpiSystem.compile(graph, partition)
        assert all(system.channel_modes.values())

    def test_threshold_configurable(self):
        graph, partition = pipeline(payload_rate=10)  # 40 bytes
        system = MpiSystem.compile(
            graph, partition, MpiConfig(eager_threshold_bytes=16)
        )
        assert all(system.channel_modes.values())


class TestRun:
    def test_functional_completion(self):
        graph, partition = pipeline()
        result = MpiSystem.compile(graph, partition).run(iterations=10)
        assert result.data_messages == 20
        assert result.ack_messages == 0  # eager: no control messages

    def test_rendezvous_control_traffic(self):
        graph, partition = pipeline(payload_rate=200)
        result = MpiSystem.compile(graph, partition).run(iterations=5)
        # each message costs an RTS and a CTS
        assert result.data_messages == 10
        assert result.ack_messages == 20

    def test_envelope_overhead_counted(self):
        graph, partition = pipeline()
        config = MpiConfig()
        result = MpiSystem.compile(graph, partition, config).run(iterations=4)
        assert result.header_bytes == 8 * config.envelope_bytes

    def test_mpi_slower_than_spi_small_messages(self):
        """The headline claim: SPI's specialisation beats the generic
        layer on the same application and mapping."""
        graph, partition = pipeline()
        mpi = MpiSystem.compile(graph, partition).run(iterations=30)
        graph2, partition2 = pipeline()
        spi = SpiSystem.compile(graph2, partition2).run(iterations=30)
        assert spi.execution_time_us < mpi.execution_time_us

    def test_mpi_slower_than_spi_large_messages(self):
        graph, partition = pipeline(payload_rate=300)
        mpi = MpiSystem.compile(graph, partition).run(iterations=10)
        graph2, partition2 = pipeline(payload_rate=300)
        spi = SpiSystem.compile(graph2, partition2).run(iterations=10)
        assert spi.execution_time_us < mpi.execution_time_us

    def test_overhead_bytes_exceed_spi(self):
        graph, partition = pipeline()
        mpi = MpiSystem.compile(graph, partition).run(iterations=10)
        graph2, partition2 = pipeline()
        spi = SpiSystem.compile(graph2, partition2).run(iterations=10)
        assert mpi.overhead_bytes > spi.overhead_bytes

    def test_iterations_validated(self):
        graph, partition = pipeline()
        system = MpiSystem.compile(graph, partition)
        with pytest.raises(Exception):
            system.run(iterations=0)


class TestResources:
    def test_engine_per_communicating_pe(self):
        graph, partition = pipeline()
        system = MpiSystem.compile(graph, partition)
        engines = system.library_resources()
        assert engines == mpi_engine_cost().scale(2)

    def test_mpi_engine_larger_than_spi_channel(self):
        from repro.spi.resources import channel_cost

        engine = mpi_engine_cost()
        spi_channel = channel_cost(dynamic=True, buffer_bytes=256,
                                   uses_acks=True)
        assert engine.slices > spi_channel.slices
        assert engine.lut4 > spi_channel.lut4
