"""Unit tests for the dataflow graph structures."""

import pytest

from repro.dataflow import (
    Actor,
    DataflowGraph,
    Direction,
    DynamicRate,
    GraphError,
    Port,
)


class TestPort:
    def test_static_port_defaults(self):
        port = Port("p", Direction.INPUT)
        assert port.rate == 1
        assert port.token_bytes == 4
        assert not port.is_dynamic
        assert port.max_rate == 1

    def test_dynamic_port_max_rate_is_bound(self):
        port = Port("p", Direction.OUTPUT, rate=DynamicRate(7))
        assert port.is_dynamic
        assert port.max_rate == 7

    def test_rejects_bad_direction(self):
        with pytest.raises(GraphError, match="direction"):
            Port("p", "sideways")

    def test_rejects_zero_rate(self):
        with pytest.raises(GraphError, match="positive"):
            Port("p", Direction.INPUT, rate=0)

    def test_rejects_negative_rate(self):
        with pytest.raises(GraphError):
            Port("p", Direction.INPUT, rate=-3)

    def test_rejects_bool_rate(self):
        with pytest.raises(GraphError):
            Port("p", Direction.INPUT, rate=True)

    def test_rejects_float_rate(self):
        with pytest.raises(GraphError, match="int or DynamicRate"):
            Port("p", Direction.INPUT, rate=1.5)

    def test_rejects_nonpositive_token_bytes(self):
        with pytest.raises(GraphError, match="token_bytes"):
            Port("p", Direction.INPUT, token_bytes=0)

    def test_qualified_name_detached(self):
        assert "<detached>" in Port("p", Direction.INPUT).qualified_name


class TestActor:
    def test_duplicate_port_rejected(self):
        actor = Actor("A")
        actor.add_input("i")
        with pytest.raises(GraphError, match="already has a port"):
            actor.add_input("i")

    def test_unknown_port_lookup(self):
        actor = Actor("A")
        with pytest.raises(GraphError, match="no port"):
            actor.port("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            Actor("")

    def test_structural_fire_produces_rate_tokens(self):
        actor = Actor("A")
        actor.add_output("o", rate=3)
        outputs = actor.fire(0, {})
        assert outputs == {"o": [None, None, None]}

    def test_kernel_missing_output_rejected(self):
        actor = Actor("A", kernel=lambda k, inputs: {})
        actor.add_output("o")
        with pytest.raises(GraphError, match="did not produce"):
            actor.fire(0, {})

    def test_callable_cycles(self):
        actor = Actor("A", cycles=lambda k, inputs: 10 * (k + 1))
        assert actor.execution_cycles(0) == 10
        assert actor.execution_cycles(2) == 30

    def test_negative_cycles_rejected(self):
        actor = Actor("A", cycles=lambda k, inputs: -1)
        with pytest.raises(GraphError, match="negative"):
            actor.execution_cycles(0)

    def test_is_dynamic_reflects_ports(self):
        actor = Actor("A")
        actor.add_output("o")
        assert not actor.is_dynamic
        actor.add_output("d", rate=DynamicRate(2))
        assert actor.is_dynamic


class TestDataflowGraph:
    def test_duplicate_actor_rejected(self):
        graph = DataflowGraph()
        graph.actor("A")
        with pytest.raises(GraphError, match="duplicate"):
            graph.actor("A")

    def test_connect_by_tuple_and_port(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        b = graph.actor("B")
        out = a.add_output("o")
        b.add_input("i")
        edge = graph.connect(out, (b, "i"))
        assert edge.src_actor is a
        assert edge.snk_actor is b

    def test_connect_rejects_foreign_port(self):
        graph = DataflowGraph()
        graph.actor("A").add_output("o")
        other = DataflowGraph()
        b = other.actor("B")
        b.add_input("i")
        with pytest.raises(GraphError, match="does not belong"):
            graph.connect((graph.get_actor("A"), "o"), (b, "i"))

    def test_output_port_single_use(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        a.add_output("o")
        b = graph.actor("B")
        b.add_input("i")
        c = graph.actor("C")
        c.add_input("i")
        graph.connect((a, "o"), (b, "i"))
        with pytest.raises(GraphError, match="already connected"):
            graph.connect((a, "o"), (c, "i"))

    def test_validate_flags_unconnected_port(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        a.add_output("o")
        with pytest.raises(GraphError, match="unconnected"):
            graph.validate()

    def test_interface_port_passes_validation(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        port = a.add_output("o")
        graph.mark_interface(port)
        graph.validate()
        assert graph.is_interface_port(port)

    def test_token_size_mismatch_rejected(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        a.add_output("o", token_bytes=2)
        b = graph.actor("B")
        b.add_input("i", token_bytes=4)
        graph.connect((a, "o"), (b, "i"))
        with pytest.raises(GraphError, match="token size"):
            graph.validate()

    def test_topological_order_ignores_delay_edges(self, cyclic_graph):
        order = [a.name for a in cyclic_graph.topological_order()]
        assert order == ["A", "B"]

    def test_topological_order_detects_zero_delay_cycle(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_input("i")
        a.add_output("o")
        b.add_input("i")
        b.add_output("o")
        graph.connect((a, "o"), (b, "i"))
        graph.connect((b, "o"), (a, "i"))  # no delay
        with pytest.raises(GraphError, match="cycle"):
            graph.topological_order()

    def test_is_connected(self, chain_graph):
        assert chain_graph.is_connected()
        graph = DataflowGraph()
        graph.actor("X")
        graph.actor("Y")
        assert not graph.is_connected()

    def test_successors_predecessors(self, chain_graph):
        b = chain_graph.get_actor("B")
        assert [a.name for a in chain_graph.predecessors(b)] == ["A"]
        assert [a.name for a in chain_graph.successors(b)] == ["C"]

    def test_edge_between(self, chain_graph):
        edge = chain_graph.edge_between("A", "B")
        assert edge.src_actor.name == "A"
        with pytest.raises(GraphError, match="no edge"):
            chain_graph.edge_between("C", "A")

    def test_copy_structure_preserves_everything(self, multirate_graph):
        clone = multirate_graph.copy_structure()
        assert len(clone) == len(multirate_graph)
        assert len(clone.edges) == len(multirate_graph.edges)
        for orig, copy in zip(multirate_graph.edges, clone.edges):
            assert orig.source.rate == copy.source.rate
            assert orig.delay == copy.delay
            assert orig.name == copy.name

    def test_copy_structure_preserves_initial_tokens(self, cyclic_graph):
        edge = cyclic_graph.edge_between("B", "A")
        edge.set_initial_tokens([42])
        clone = cyclic_graph.copy_structure()
        assert clone.edge_between("B", "A").initial_tokens == [42]

    def test_initial_tokens_length_checked(self, cyclic_graph):
        edge = cyclic_graph.edge_between("B", "A")
        with pytest.raises(GraphError, match="initial values"):
            edge.set_initial_tokens([1, 2])

    def test_to_dot_contains_actors_and_edges(self, chain_graph):
        dot = chain_graph.to_dot()
        assert '"A" -> "B"' in dot
        assert "digraph" in dot

    def test_dynamic_edge_classification(self, fig1_graph):
        assert fig1_graph.is_dynamic
        assert len(fig1_graph.dynamic_edges) == 1
        assert not fig1_graph.static_edges

    def test_edge_rejects_wrong_port_directions(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_input("i")
        b.add_input("i")
        with pytest.raises(GraphError, match="not an output"):
            graph.connect((a, "i"), (b, "i"))

    def test_negative_delay_rejected(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o")
        b.add_input("i")
        with pytest.raises(GraphError, match="delay"):
            graph.connect((a, "o"), (b, "i"), delay=-1)
