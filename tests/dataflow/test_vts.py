"""Unit tests for VTS conversion (paper §3, eqs. 1 and 2)."""

import pytest

from repro.dataflow import (
    DataflowGraph,
    DynamicRate,
    GraphError,
    PackedToken,
    build_pass,
    repetitions_vector,
    vts_convert,
)
from repro.dataflow.vts import minimum_feedback_delay


class TestPackedToken:
    def test_pack_unpack_roundtrip(self):
        token = PackedToken.pack([1, 2, 3], raw_token_bytes=2)
        assert token.size == 3
        assert token.nbytes == 6
        assert token.unpack() == [1, 2, 3]

    def test_empty_pack_allowed(self):
        token = PackedToken.pack([], raw_token_bytes=4)
        assert token.size == 0
        assert token.nbytes == 0

    def test_frozen(self):
        token = PackedToken.pack([1], 4)
        with pytest.raises(AttributeError):
            token.payload = (2,)


class TestVtsConversion:
    def test_fig1_conversion(self, fig1_graph):
        """The paper's figure 1: rates <=10 / <=8 become rate 1 with
        token size bounds."""
        conversion = vts_convert(fig1_graph)
        edge = conversion.graph.edges[0]
        assert edge.source.rate == 1
        assert edge.sink.rate == 1
        info = conversion.edge_info[edge.name]
        assert info.producer_bound == 10
        assert info.consumer_bound == 8
        # b_max = max bound x raw bytes = 10 x 2
        assert conversion.packed_token_bound_bytes(edge) == 20

    def test_eq1_uses_converted_c_sdf(self, fig1_graph):
        conversion = vts_convert(fig1_graph)
        edge = conversion.graph.edges[0]
        info = conversion.edge_info[edge.name]
        # converted graph is a 1->1 chain: c_sdf = 1 packed token
        assert info.c_sdf == 1
        assert conversion.coexisting_bytes_bound(edge) == 1 * 20

    def test_eq2_unbounded_without_feedback(self, fig1_graph):
        conversion = vts_convert(fig1_graph)
        edge = conversion.graph.edges[0]
        assert conversion.ipc_buffer_bound_bytes(edge) is None

    def test_eq2_with_feedback(self):
        graph = DataflowGraph("fb")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o", rate=DynamicRate(4), token_bytes=2)
        a.add_input("back")
        b.add_input("i", rate=DynamicRate(4), token_bytes=2)
        b.add_output("back")
        graph.connect((a, "o"), (b, "i"))
        graph.connect((b, "back"), (a, "back"), delay=2)
        conversion = vts_convert(graph)
        forward = conversion.graph.edge_between("A", "B")
        # G (min feedback B->A) = 2, delay(e) = 0, c(e) = c_sdf * 8
        bound = conversion.ipc_buffer_bound_bytes(forward)
        info = conversion.edge_info[forward.name]
        assert bound == (2 + 0) * info.c_bytes

    def test_converted_graph_is_static_and_consistent(self, fig1_graph):
        conversion = vts_convert(fig1_graph)
        assert not conversion.graph.is_dynamic
        reps = repetitions_vector(conversion.graph)
        assert reps == {"A": 1, "B": 1}
        build_pass(conversion.graph)

    def test_static_graph_rejected(self, chain_graph):
        with pytest.raises(GraphError, match="no dynamic"):
            vts_convert(chain_graph)

    def test_delay_on_dynamic_edge_rejected(self):
        graph = DataflowGraph("bad")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o", rate=DynamicRate(3))
        b.add_input("i", rate=DynamicRate(3))
        graph.connect((a, "o"), (b, "i"), delay=1)
        with pytest.raises(GraphError, match="delay"):
            vts_convert(graph)

    def test_static_edges_untouched(self):
        graph = DataflowGraph("mixed")
        a = graph.actor("A")
        b = graph.actor("B")
        c = graph.actor("C")
        a.add_output("dyn", rate=DynamicRate(5), token_bytes=2)
        a.add_output("stat", rate=3, token_bytes=4)
        b.add_input("i", rate=DynamicRate(5), token_bytes=2)
        c.add_input("i", rate=3, token_bytes=4)
        graph.connect((a, "dyn"), (b, "i"))
        graph.connect((a, "stat"), (c, "i"))
        conversion = vts_convert(graph)
        static_edge = conversion.graph.edge_between("A", "C")
        assert static_edge.source.rate == 3
        assert static_edge.token_bytes == 4
        assert not conversion.is_converted_edge(static_edge)


class TestKernelWrapping:
    def test_dynamic_kernel_packs_and_unpacks(self):
        graph = DataflowGraph("wrap")
        produced = [10, 20, 30]

        def src_kernel(k, inputs):
            return {"o": list(produced)}

        received = []

        def snk_kernel(k, inputs):
            received.extend(inputs["i"])
            return {}

        a = graph.actor("A", kernel=src_kernel)
        b = graph.actor("B", kernel=snk_kernel)
        a.add_output("o", rate=DynamicRate(5), token_bytes=2)
        b.add_input("i", rate=DynamicRate(5), token_bytes=2)
        graph.connect((a, "o"), (b, "i"))
        conversion = vts_convert(graph)
        out = conversion.graph.get_actor("A").fire(0, {})
        assert len(out["o"]) == 1
        token = out["o"][0]
        assert isinstance(token, PackedToken)
        assert token.unpack() == produced
        conversion.graph.get_actor("B").fire(0, {"i": [token]})
        assert received == produced

    def test_bound_violation_raises(self):
        graph = DataflowGraph("over")

        def src_kernel(k, inputs):
            return {"o": [0] * 9}

        a = graph.actor("A", kernel=src_kernel)
        b = graph.actor("B")
        a.add_output("o", rate=DynamicRate(5))
        b.add_input("i", rate=DynamicRate(5))
        graph.connect((a, "o"), (b, "i"))
        conversion = vts_convert(graph)
        with pytest.raises(GraphError, match="outside the declared range"):
            conversion.graph.get_actor("A").fire(0, {})

    def test_empty_firing_needs_zero_minimum(self):
        def empty_kernel(k, inputs):
            return {"o": []}

        for minimum, ok in ((0, True), (1, False)):
            graph = DataflowGraph(f"empty{minimum}")
            a = graph.actor("A", kernel=empty_kernel)
            b = graph.actor("B")
            a.add_output("o", rate=DynamicRate(5, minimum=minimum))
            b.add_input("i", rate=DynamicRate(5, minimum=minimum))
            graph.connect((a, "o"), (b, "i"))
            conversion = vts_convert(graph)
            if ok:
                out = conversion.graph.get_actor("A").fire(0, {})
                assert out["o"][0].size == 0
            else:
                with pytest.raises(GraphError):
                    conversion.graph.get_actor("A").fire(0, {})

    def test_data_dependent_cycles_wrapped(self):
        graph = DataflowGraph("cyc")
        a = graph.actor("A")
        b = graph.actor(
            "B", cycles=lambda k, inputs: 10 * len(inputs.get("i", []))
        )
        a.add_output("o", rate=DynamicRate(5))
        b.add_input("i", rate=DynamicRate(5))
        graph.connect((a, "o"), (b, "i"))
        conversion = vts_convert(graph)
        wrapped = conversion.graph.get_actor("B")
        token = PackedToken.pack([1, 2, 3], 4)
        assert wrapped.execution_cycles(0, {"i": [token]}) == 30


class TestFeedbackDelay:
    def test_no_path(self, chain_graph):
        edge = chain_graph.edge_between("A", "B")
        assert minimum_feedback_delay(chain_graph, edge) is None

    def test_min_delay_path(self, cyclic_graph):
        forward = cyclic_graph.edge_between("A", "B")
        assert minimum_feedback_delay(cyclic_graph, forward) == 1
        backward = cyclic_graph.edge_between("B", "A")
        assert minimum_feedback_delay(cyclic_graph, backward) == 0
