"""Property tests for the VTS buffer-bound analysis (paper eqs. 1/2).

Hypothesis drives the bound formulas over the whole small-parameter
space: ``b_max(e)`` must equal ``max(prod bound, cons bound) * raw
token bytes``, ``c(e) = c_sdf(e) * b_max(e)`` (eq. 1), and the IPC
buffer bound ``B(e) = (G + delay(e)) * c(e)`` (eq. 2) must be exact and
monotone in both the dynamic-rate bounds and the feedback delay.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import DataflowGraph, DynamicRate
from repro.dataflow.vts import minimum_feedback_delay, vts_convert


def _dynamic_cycle(prod_bound, cons_bound, token_bytes, delay, feedback=True):
    """A -> B dynamic edge, optionally closed by B -> A with ``delay``."""
    graph = DataflowGraph("vts_prop")
    a = graph.actor("A", cycles=5)
    b = graph.actor("B", cycles=5)
    a.add_output(
        "o", rate=DynamicRate(prod_bound), token_bytes=token_bytes
    )
    b.add_input("i", rate=DynamicRate(cons_bound), token_bytes=token_bytes)
    graph.connect((a, "o"), (b, "i"))
    if feedback:
        b.add_output("r", rate=1, token_bytes=token_bytes)
        a.add_input("r", rate=1, token_bytes=token_bytes)
        graph.connect((b, "r"), (a, "r"), delay=delay)
    graph.validate()
    return graph


BOUNDS = st.integers(min_value=1, max_value=8)
BYTES = st.integers(min_value=1, max_value=8)
DELAYS = st.integers(min_value=1, max_value=6)


class TestEquationOne:
    @given(prod=BOUNDS, cons=BOUNDS, nbytes=BYTES, delay=DELAYS)
    @settings(max_examples=60, deadline=None)
    def test_b_max_and_c_are_exact(self, prod, cons, nbytes, delay):
        conversion = vts_convert(_dynamic_cycle(prod, cons, nbytes, delay))
        edge = conversion.graph.edge_between("A", "B")
        info = conversion.edge_info[edge.name]
        assert info.producer_bound == prod
        assert info.consumer_bound == cons
        assert info.b_max_bytes == max(prod, cons) * nbytes
        assert (
            conversion.coexisting_bytes_bound(edge)
            == info.c_sdf * info.b_max_bytes
        )
        # packed sizes up to the rate bound are admissible, one more not
        assert info.admits_packed_size(max(prod, cons))
        assert not info.admits_packed_size(max(prod, cons) + 1)

    @given(prod=BOUNDS, cons=BOUNDS, nbytes=BYTES, bump=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_b_max_monotone_in_rate_bounds(self, prod, cons, nbytes, bump):
        small = vts_convert(_dynamic_cycle(prod, cons, nbytes, delay=1))
        grown = vts_convert(
            _dynamic_cycle(prod + bump, cons + bump, nbytes, delay=1)
        )
        edge_small = small.graph.edge_between("A", "B")
        edge_grown = grown.graph.edge_between("A", "B")
        assert (
            grown.packed_token_bound_bytes(edge_grown)
            >= small.packed_token_bound_bytes(edge_small)
        )
        assert grown.coexisting_bytes_bound(
            edge_grown
        ) >= small.coexisting_bytes_bound(edge_small)


class TestEquationTwo:
    @given(prod=BOUNDS, cons=BOUNDS, nbytes=BYTES, delay=DELAYS)
    @settings(max_examples=60, deadline=None)
    def test_buffer_bound_is_feedback_times_c(self, prod, cons, nbytes, delay):
        conversion = vts_convert(_dynamic_cycle(prod, cons, nbytes, delay))
        edge = conversion.graph.edge_between("A", "B")
        feedback = minimum_feedback_delay(conversion.graph, edge)
        assert feedback == delay  # the cycle's only return path
        bound = conversion.ipc_buffer_bound_bytes(edge)
        assert bound == (feedback + edge.delay) * conversion.coexisting_bytes_bound(edge)

    @given(prod=BOUNDS, cons=BOUNDS, nbytes=BYTES, delay=DELAYS,
           extra=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_buffer_bound_monotone_in_delay(
        self, prod, cons, nbytes, delay, extra
    ):
        near = vts_convert(_dynamic_cycle(prod, cons, nbytes, delay))
        far = vts_convert(_dynamic_cycle(prod, cons, nbytes, delay + extra))
        edge_near = near.graph.edge_between("A", "B")
        edge_far = far.graph.edge_between("A", "B")
        bound_near = near.ipc_buffer_bound_bytes(edge_near)
        bound_far = far.ipc_buffer_bound_bytes(edge_far)
        assert bound_near is not None and bound_far is not None
        assert bound_far >= bound_near

    @given(prod=BOUNDS, cons=BOUNDS, nbytes=BYTES)
    @settings(max_examples=30, deadline=None)
    def test_no_feedback_means_no_bound(self, prod, cons, nbytes):
        """Without a return path eq. 2 has no finite G: bound is None."""
        conversion = vts_convert(
            _dynamic_cycle(prod, cons, nbytes, delay=1, feedback=False)
        )
        edge = conversion.graph.edge_between("A", "B")
        assert minimum_feedback_delay(conversion.graph, edge) is None
        assert conversion.ipc_buffer_bound_bytes(edge) is None
