"""Unit tests for HSDF expansion."""


from repro.dataflow import DataflowGraph, build_pass, repetitions_vector
from repro.dataflow.hsdf import hsdf_expand, invocation_name


class TestHsdfExpand:
    def test_vertex_count_is_sum_of_repetitions(self, multirate_graph):
        expanded = hsdf_expand(multirate_graph)
        reps = repetitions_vector(multirate_graph)
        assert len(expanded) == sum(reps.values())

    def test_all_rates_are_one(self, multirate_graph):
        expanded = hsdf_expand(multirate_graph)
        for actor in expanded.actors:
            for port in actor.ports:
                assert port.rate == 1

    def test_expansion_is_consistent_homogeneous(self, multirate_graph):
        expanded = hsdf_expand(multirate_graph)
        reps = repetitions_vector(expanded)
        assert all(count == 1 for count in reps.values())

    def test_expansion_schedulable(self, multirate_graph):
        expanded = hsdf_expand(multirate_graph)
        schedule = build_pass(expanded)
        assert len(schedule) == len(expanded)

    def test_homogeneous_graph_maps_one_to_one(self, chain_graph):
        expanded = hsdf_expand(chain_graph)
        assert len(expanded) == 3
        assert {a.name for a in expanded} == {
            invocation_name("A", 0),
            invocation_name("B", 0),
            invocation_name("C", 0),
        }

    def test_precedence_structure_simple(self):
        # A produces 2, B consumes 1 => B#0 and B#1 both depend on A#0
        graph = DataflowGraph("fan")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o", rate=2)
        b.add_input("i", rate=1)
        graph.connect((a, "o"), (b, "i"))
        expanded = hsdf_expand(graph)
        deps = {
            (e.src_actor.name, e.snk_actor.name, e.delay)
            for e in expanded.edges
        }
        assert ("A#0", "B#0", 0) in deps
        assert ("A#0", "B#1", 0) in deps

    def test_delay_becomes_iteration_offset(self, cyclic_graph):
        expanded = hsdf_expand(cyclic_graph)
        deps = {
            (e.src_actor.name, e.snk_actor.name): e.delay
            for e in expanded.edges
        }
        assert deps[("A#0", "B#0")] == 0
        assert deps[("B#0", "A#0")] == 1

    def test_invocation_cycles_inherited(self, multirate_graph):
        expanded = hsdf_expand(multirate_graph)
        a0 = expanded.get_actor("A#0")
        assert a0.execution_cycles(0) == 5

    def test_multirate_delay_distribution(self):
        # A(1) -> (1)B with 3 delays, both homogeneous: offset 3.
        graph = DataflowGraph("d")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o")
        b.add_input("i")
        graph.connect((a, "o"), (b, "i"), delay=3)
        expanded = hsdf_expand(graph)
        assert expanded.edges[0].delay == 3

    def test_rate2_delay1_split(self):
        # prod 2, cons 2, delay 1: B#k consumes 1 old + 1 new token.
        graph = DataflowGraph("mix")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o", rate=2)
        b.add_input("i", rate=2)
        graph.connect((a, "o"), (b, "i"), delay=1)
        expanded = hsdf_expand(graph)
        deps = {
            (e.src_actor.name, e.snk_actor.name): e.delay
            for e in expanded.edges
        }
        # B#0 needs A#0 of the same iteration (token 1 of 2) — min delay 0
        assert deps[("A#0", "B#0")] == 0
