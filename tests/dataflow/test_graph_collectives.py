"""Graph-level tests for collective connections (broadcast/scatter/
gather/reduce) and their degenerate single-branch forms."""

import pytest

from repro.dataflow import DataflowGraph
from repro.dataflow.graph import Connection, DynamicRate, GraphError


def _fan_out_graph(n_sinks=2, rate=4, sink_rate=None):
    graph = DataflowGraph("fan")
    src = graph.actor("src", cycles=10)
    src.add_output("o", rate=rate)
    for j in range(n_sinks):
        snk = graph.actor(f"snk{j}", cycles=5)
        snk.add_input("i", rate=sink_rate if sink_rate is not None else rate)
    return graph


def _fan_in_graph(n_sources=2, rate=2, sink_rate=None):
    graph = DataflowGraph("fan_in")
    for j in range(n_sources):
        src = graph.actor(f"src{j}", cycles=5)
        src.add_output("o", rate=rate)
    snk = graph.actor("snk", cycles=10)
    snk.add_input(
        "i", rate=sink_rate if sink_rate is not None else rate * n_sources
    )
    return graph


class TestConstruction:
    def test_connect_wraps_plain_fifo_connection(self):
        graph = _fan_out_graph(n_sinks=1)
        edge = graph.connect(
            (graph.get_actor("src"), "o"), (graph.get_actor("snk0"), "i")
        )
        (conn,) = graph.connections
        assert conn.kind == Connection.FIFO
        assert conn.edges == (edge,)
        assert edge.connection is conn
        assert not conn.is_collective
        assert not graph.has_collectives

    def test_broadcast_membership_and_edge_names(self):
        graph = _fan_out_graph(n_sinks=3)
        conn = graph.add_broadcast(
            "src.o", ["snk0.i", "snk1.i", "snk2.i"], name="bc"
        )
        assert conn.kind == Connection.BROADCAST
        assert conn.is_collective
        assert conn.fan_out == 3
        assert [e.name for e in conn.edges] == ["bc[0]", "bc[1]", "bc[2]"]
        for index, edge in enumerate(conn.edges):
            assert edge.connection is conn
            assert edge.branch_index == index
            assert edge.source.qualified_name == "src.o"
        assert graph.collective_connections == (conn,)

    def test_string_tuple_and_port_references_agree(self):
        graph = _fan_out_graph(n_sinks=2)
        src = graph.get_actor("src")
        conn = graph.add_broadcast(
            src.port("o"), [("snk0.i"), (graph.get_actor("snk1"), "i")]
        )
        assert {e.sink.actor.name for e in conn.edges} == {"snk0", "snk1"}

    def test_port_joins_at_most_one_connection(self):
        graph = _fan_out_graph(n_sinks=2)
        graph.connect(
            (graph.get_actor("src"), "o"), (graph.get_actor("snk0"), "i")
        )
        with pytest.raises(GraphError, match="already connected"):
            graph.add_broadcast("src.o", ["snk1.i"])

    def test_dynamic_ports_rejected(self):
        graph = DataflowGraph("dyn")
        src = graph.actor("src", cycles=5)
        src.add_output("o", rate=DynamicRate(4))
        snk = graph.actor("snk", cycles=5)
        snk.add_input("i", rate=DynamicRate(4))
        with pytest.raises(GraphError, match="dynamic"):
            graph.add_broadcast("src.o", ["snk.i"])


class TestDegenerate:
    def test_single_branch_broadcast_is_not_collective(self):
        graph = _fan_out_graph(n_sinks=1)
        conn = graph.add_broadcast("src.o", ["snk0.i"])
        assert not conn.is_collective
        assert not graph.has_collectives
        assert graph.collective_connections == ()

    def test_single_branch_gather_orients_into_the_hub(self):
        """A 1-producer gather still fans *in*: the hub is the sink and
        the single chunk equals the hub's consumption rate."""
        graph = _fan_in_graph(n_sources=1, rate=2, sink_rate=2)
        conn = graph.add_gather(["src0.o"], "snk.i")
        assert not conn.is_collective
        (edge,) = conn.edges
        assert edge.source.qualified_name == "src0.o"
        assert edge.sink.qualified_name == "snk.i"
        assert conn.chunks == (2,)
        assert edge.cons_rate == 2

    def test_degenerate_rates_match_plain_fifo(self):
        graph = _fan_out_graph(n_sinks=1)
        conn = graph.add_broadcast("src.o", ["snk0.i"])
        (edge,) = conn.edges
        assert edge.prod_rate == 4
        assert edge.cons_rate == 4


class TestScatterGather:
    def test_scatter_default_even_chunks(self):
        graph = _fan_out_graph(n_sinks=2, rate=4, sink_rate=2)
        conn = graph.add_scatter("src.o", ["snk0.i", "snk1.i"])
        assert conn.chunks == (2, 2)
        assert [e.prod_rate for e in conn.edges] == [2, 2]
        assert conn.branch_span(0) == (0, 2)
        assert conn.branch_span(1) == (2, 4)

    def test_scatter_uneven_rate_needs_explicit_chunks(self):
        graph = _fan_out_graph(n_sinks=3, rate=4)
        with pytest.raises(GraphError, match="split evenly"):
            graph.add_scatter("src.o", ["snk0.i", "snk1.i", "snk2.i"])

    def test_scatter_explicit_chunks_override_branch_rates(self):
        graph = DataflowGraph("uneven")
        src = graph.actor("src", cycles=5)
        src.add_output("o", rate=5)
        a = graph.actor("a", cycles=5)
        a.add_input("i", rate=2)
        b = graph.actor("b", cycles=5)
        b.add_input("i", rate=3)
        conn = graph.add_scatter("src.o", ["a.i", "b.i"], chunks=[2, 3])
        assert [e.prod_rate for e in conn.edges] == [2, 3]
        assert conn.produced_tokens(conn.edges[1], [0, 1, 2, 3, 4]) == [2, 3, 4]

    def test_chunks_must_sum_to_shared_rate(self):
        graph = _fan_out_graph(n_sinks=2, rate=4, sink_rate=2)
        with pytest.raises(GraphError, match="sum to"):
            graph.add_scatter("src.o", ["snk0.i", "snk1.i"], chunks=[1, 2])

    def test_gather_concatenates_in_branch_order(self):
        graph = _fan_in_graph(n_sources=3, rate=1, sink_rate=3)
        conn = graph.add_gather(["src0.o", "src1.o", "src2.o"], "snk.i")
        assert conn.chunks == (1, 1, 1)
        assert [e.cons_rate for e in conn.edges] == [1, 1, 1]
        assert conn.assemble([[10], [20], [30]]) == [10, 20, 30]


class TestReduce:
    def test_default_combine_is_elementwise_add(self):
        graph = _fan_in_graph(n_sources=3, rate=2, sink_rate=2)
        conn = graph.add_reduce(["src0.o", "src1.o", "src2.o"], "snk.i")
        assert conn.assemble([[1, 2], [10, 20], [100, 200]]) == [111, 222]

    def test_custom_combine(self):
        graph = _fan_in_graph(n_sources=2, rate=1, sink_rate=1)
        conn = graph.add_reduce(
            ["src0.o", "src1.o"],
            "snk.i",
            combine=lambda branches: [max(v) for v in zip(*branches)],
        )
        assert conn.assemble([[3], [7]]) == [7]


class TestCopyStructure:
    def test_connections_survive_copy(self):
        graph = _fan_out_graph(n_sinks=2)
        graph.add_broadcast("src.o", ["snk0.i", "snk1.i"], name="bc")
        copy = graph.copy_structure()
        (conn,) = copy.collective_connections
        assert conn.kind == Connection.BROADCAST
        assert conn.name == "bc"
        assert [e.name for e in conn.edges] == ["bc[0]", "bc[1]"]
        assert all(e.connection is conn for e in conn.edges)
        copy.validate()

    def test_copy_preserves_chunks(self):
        graph = DataflowGraph("uneven")
        src = graph.actor("src", cycles=5)
        src.add_output("o", rate=5)
        a = graph.actor("a", cycles=5)
        a.add_input("i", rate=2)
        b = graph.actor("b", cycles=5)
        b.add_input("i", rate=3)
        graph.add_scatter("src.o", ["a.i", "b.i"], chunks=[2, 3])
        copy = graph.copy_structure()
        (conn,) = copy.collective_connections
        assert conn.chunks == (2, 3)
        assert [e.prod_rate for e in conn.edges] == [2, 3]
