"""Unit and property tests for SDF analysis (repetitions vector, PASS)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    DataflowGraph,
    DeadlockError,
    InconsistentGraphError,
    SdfError,
    build_pass,
    is_consistent,
    repetitions_vector,
    total_firings_per_iteration,
)


class TestRepetitionsVector:
    def test_homogeneous_chain(self, chain_graph):
        assert repetitions_vector(chain_graph) == {"A": 1, "B": 1, "C": 1}

    def test_multirate_chain(self, multirate_graph):
        assert repetitions_vector(multirate_graph) == {"A": 3, "B": 2, "C": 1}

    def test_balance_equations_hold(self, multirate_graph):
        reps = repetitions_vector(multirate_graph)
        for edge in multirate_graph.edges:
            assert (
                reps[edge.src_actor.name] * edge.source.rate
                == reps[edge.snk_actor.name] * edge.sink.rate
            )

    def test_inconsistent_graph_rejected(self):
        graph = DataflowGraph("bad")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o1", rate=2)
        a.add_output("o2", rate=3)
        b.add_input("i1", rate=1)
        b.add_input("i2", rate=1)
        graph.connect((a, "o1"), (b, "i1"))
        graph.connect((a, "o2"), (b, "i2"))
        with pytest.raises(InconsistentGraphError):
            repetitions_vector(graph)
        assert not is_consistent(graph)

    def test_disconnected_components_each_minimal(self):
        graph = DataflowGraph("two")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o", rate=2)
        b.add_input("i", rate=4)
        graph.connect((a, "o"), (b, "i"))
        x = graph.actor("X")
        y = graph.actor("Y")
        x.add_output("o", rate=3)
        y.add_input("i", rate=1)
        graph.connect((x, "o"), (y, "i"))
        reps = repetitions_vector(graph)
        assert reps == {"A": 2, "B": 1, "X": 1, "Y": 3}

    def test_self_loop_equal_rates_ok(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        a.add_output("o", rate=2)
        a.add_input("i", rate=2)
        graph.connect((a, "o"), (a, "i"), delay=2)
        assert repetitions_vector(graph) == {"A": 1}

    def test_self_loop_mismatched_rates_rejected(self):
        graph = DataflowGraph()
        a = graph.actor("A")
        a.add_output("o", rate=2)
        a.add_input("i", rate=3)
        graph.connect((a, "o"), (a, "i"), delay=6)
        with pytest.raises(InconsistentGraphError, match="self-loop"):
            repetitions_vector(graph)

    def test_dynamic_graph_rejected(self, fig1_graph):
        with pytest.raises(SdfError, match="dynamic"):
            repetitions_vector(fig1_graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(SdfError, match="empty"):
            repetitions_vector(DataflowGraph())

    def test_total_firings(self, multirate_graph):
        assert total_firings_per_iteration(multirate_graph) == 6

    @given(p=st.integers(1, 12), c=st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_two_actor_vector_is_minimal(self, p, c):
        graph = DataflowGraph("pc")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_output("o", rate=p)
        b.add_input("i", rate=c)
        graph.connect((a, "o"), (b, "i"))
        reps = repetitions_vector(graph)
        # balance plus minimality (gcd of the vector is 1)
        assert reps["A"] * p == reps["B"] * c
        import math

        assert math.gcd(reps["A"], reps["B"]) == 1


class TestPass:
    def test_pass_counts_match_repetitions(self, multirate_graph):
        schedule = build_pass(multirate_graph)
        counts = {}
        for actor in schedule:
            counts[actor.name] = counts.get(actor.name, 0) + 1
        assert counts == repetitions_vector(multirate_graph)

    def test_pass_respects_precedence(self, chain_graph):
        names = [a.name for a in build_pass(chain_graph)]
        assert names.index("A") < names.index("B") < names.index("C")

    def test_deadlock_detected(self):
        graph = DataflowGraph("dead")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_input("i")
        a.add_output("o")
        b.add_input("i")
        b.add_output("o")
        graph.connect((a, "o"), (b, "i"))
        graph.connect((b, "o"), (a, "i"))  # zero-delay cycle
        with pytest.raises(DeadlockError):
            build_pass(graph)

    def test_delay_breaks_deadlock(self, cyclic_graph):
        schedule = build_pass(cyclic_graph)
        assert [a.name for a in schedule] == ["A", "B"]

    def test_insufficient_delay_on_multirate_cycle(self):
        graph = DataflowGraph("tight")
        a = graph.actor("A")
        b = graph.actor("B")
        a.add_input("i", rate=2)
        a.add_output("o", rate=2)
        b.add_input("i", rate=2)
        b.add_output("o", rate=2)
        graph.connect((a, "o"), (b, "i"))
        graph.connect((b, "o"), (a, "i"), delay=1)  # needs 2
        with pytest.raises(DeadlockError):
            build_pass(graph)

    def test_pass_is_deterministic(self, multirate_graph):
        first = [a.name for a in build_pass(multirate_graph)]
        second = [a.name for a in build_pass(multirate_graph)]
        assert first == second
