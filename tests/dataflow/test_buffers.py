"""Unit and property tests for SDF buffer bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import (
    DataflowGraph,
    sdf_buffer_bounds,
    simulate_edge_occupancy,
)


def _chain(p, c, delay=0):
    graph = DataflowGraph("pc")
    a = graph.actor("A")
    b = graph.actor("B")
    a.add_output("o", rate=p)
    b.add_input("i", rate=c)
    graph.connect((a, "o"), (b, "i"), delay=delay)
    return graph


class TestBufferBounds:
    def test_simulated_bound_on_chain(self, multirate_graph):
        bounds = sdf_buffer_bounds(multirate_graph, method="simulate")
        edges = {e.name: e.edge_id for e in multirate_graph.edges}
        # PASS fires A A B A B C: edge A->B peaks at 4, edge B->C at 2
        assert bounds[edges["A.o->B.i"]] == 4
        assert bounds[edges["B.o->C.i"]] == 2

    def test_conservative_dominates_simulated(self, multirate_graph):
        tight = sdf_buffer_bounds(multirate_graph, method="simulate")
        loose = sdf_buffer_bounds(multirate_graph, method="conservative")
        for edge in multirate_graph.edges:
            assert loose[edge.edge_id] >= tight[edge.edge_id]

    def test_delay_counts_toward_bound(self):
        graph = _chain(1, 1, delay=3)
        bounds = sdf_buffer_bounds(graph, method="simulate")
        assert bounds[graph.edges[0].edge_id] == 4  # 3 initial + 1 produced

    def test_unknown_method_rejected(self, chain_graph):
        with pytest.raises(ValueError, match="unknown"):
            sdf_buffer_bounds(chain_graph, method="magic")

    def test_multiple_iterations_stable(self, multirate_graph):
        one = simulate_edge_occupancy(multirate_graph, iterations=1)
        three = simulate_edge_occupancy(multirate_graph, iterations=3)
        assert one == three  # periodic steady state

    def test_zero_iterations_rejected(self, chain_graph):
        with pytest.raises(ValueError):
            simulate_edge_occupancy(chain_graph, iterations=0)

    @given(p=st.integers(1, 8), c=st.integers(1, 8), d=st.integers(0, 6))
    @settings(max_examples=50, deadline=None)
    def test_simulated_bound_within_conservative(self, p, c, d):
        graph = _chain(p, c, delay=d)
        tight = sdf_buffer_bounds(graph, method="simulate")
        loose = sdf_buffer_bounds(graph, method="conservative")
        edge_id = graph.edges[0].edge_id
        assert 0 < tight[edge_id] <= loose[edge_id]

    @given(p=st.integers(1, 8), c=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_bound_at_least_max_rate(self, p, c):
        """An edge must at least hold one producer burst or one consumer
        demand's worth of tokens."""
        graph = _chain(p, c)
        bound = sdf_buffer_bounds(graph, method="simulate")[
            graph.edges[0].edge_id
        ]
        assert bound >= max(p, c) or bound >= c
