"""Unit tests for flat and looped schedules."""

import pytest

from repro.dataflow import (
    DataflowGraph,
    FlatSchedule,
    GraphError,
    LoopedSchedule,
    ScheduleLoop,
    build_pass,
    single_appearance_schedule,
)


class TestFlatSchedule:
    def test_counts_and_validity(self, multirate_graph):
        flat = FlatSchedule(multirate_graph, build_pass(multirate_graph))
        assert flat.counts() == {"A": 3, "B": 2, "C": 1}
        assert flat.is_valid_iteration()

    def test_underflow_detected(self, chain_graph):
        b = chain_graph.get_actor("B")
        flat = FlatSchedule(chain_graph, [b])
        with pytest.raises(GraphError, match="underflow"):
            flat.validate_admissible()

    def test_profile_makespan_sums_cycles(self, chain_graph):
        flat = FlatSchedule(chain_graph, build_pass(chain_graph))
        profile = flat.profile()
        assert profile.makespan_cycles == 10 + 20 + 5
        assert profile.firings == 3

    def test_profile_buffer_tokens(self, multirate_graph):
        flat = FlatSchedule(multirate_graph, build_pass(multirate_graph))
        profile = flat.profile()
        assert profile.total_buffer_tokens == 4 + 2

    def test_foreign_actor_rejected(self, chain_graph):
        other = DataflowGraph()
        x = other.actor("X")
        with pytest.raises(GraphError, match="does not belong"):
            FlatSchedule(chain_graph, [x])


class TestScheduleLoop:
    def test_expand_nested(self):
        inner = ScheduleLoop(2, ("B",))
        outer = ScheduleLoop(2, ("A", inner))
        assert outer.expand() == ["A", "B", "B", "A", "B", "B"]

    def test_str_rendering(self):
        loop = ScheduleLoop(3, ("A", ScheduleLoop(2, ("B",))))
        assert str(loop) == "(3 A (2 B))"

    def test_validation(self):
        with pytest.raises(GraphError):
            ScheduleLoop(0, ("A",))
        with pytest.raises(GraphError):
            ScheduleLoop(1, ())


class TestLoopedSchedule:
    def test_single_appearance_construction(self, multirate_graph):
        looped = single_appearance_schedule(multirate_graph)
        assert looped.is_single_appearance
        flat = looped.flatten()
        assert flat.is_valid_iteration()
        flat.validate_admissible()

    def test_single_appearance_text(self, multirate_graph):
        looped = single_appearance_schedule(multirate_graph)
        assert str(looped) == "(1 (3 A) (2 B) (1 C))"

    def test_appearances(self, chain_graph):
        root = ScheduleLoop(1, ("A", "B", "A", "C"))
        looped = LoopedSchedule(chain_graph, root)
        assert looped.appearances() == {"A": 2, "B": 1, "C": 1}
        assert not looped.is_single_appearance

    def test_flatten_resolves_actor_names(self, chain_graph):
        root = ScheduleLoop(1, ("A", "B", "C"))
        flat = LoopedSchedule(chain_graph, root).flatten()
        assert [a.name for a in flat] == ["A", "B", "C"]
