"""Unit and integration tests for the restricted-KPN adapter."""

import pytest

from repro.dataflow import GraphError
from repro.dataflow.kpn import KpnChannelSpec, KpnNetwork, KpnProcess
from repro.mapping import Partition
from repro.spi import SpiSystem


def words(max_tokens=4, minimum=0):
    return KpnChannelSpec(
        max_tokens_per_step=max_tokens,
        token_bytes=4,
        min_tokens_per_step=minimum,
    )


def build_splitter_network(collect):
    """source -> splitter -> (evens, odds) -> merger: data-dependent
    message sizes, the classic KPN example."""
    network = KpnNetwork("split_merge")

    def source_step(k, inputs):
        return {"out": list(range(k % 4 + 1))}

    def splitter_step(k, inputs):
        values = inputs["in"]
        return {
            "evens": [v for v in values if v % 2 == 0],
            "odds": [v for v in values if v % 2 == 1],
        }

    def merger_step(k, inputs):
        merged = sorted(inputs["evens"] + inputs["odds"])
        collect.append(merged)
        return {}

    network.add(
        KpnProcess("source", source_step, work_cycles=5).writes(
            "out", words()
        )
    )
    network.add(
        KpnProcess("splitter", splitter_step, work_cycles=8)
        .reads("in", words())
        .writes("evens", words())
        .writes("odds", words())
    )
    network.add(
        KpnProcess("merger", merger_step, work_cycles=6)
        .reads("evens", words())
        .reads("odds", words())
    )
    network.connect("source", "out", "splitter", "in")
    network.connect("splitter", "evens", "merger", "evens")
    network.connect("splitter", "odds", "merger", "odds")
    return network


class TestSpecValidation:
    def test_unbounded_channel_rejected(self):
        with pytest.raises(GraphError, match="general KPN"):
            KpnChannelSpec(max_tokens_per_step=0)

    def test_bounds_ordering(self):
        with pytest.raises(GraphError):
            KpnChannelSpec(max_tokens_per_step=2, min_tokens_per_step=3)

    def test_mismatched_endpoint_specs_rejected(self):
        network = KpnNetwork()
        network.add(KpnProcess("a").writes("o", words(4)))
        network.add(KpnProcess("b").reads("i", words(8)))
        with pytest.raises(GraphError, match="one type"):
            network.connect("a", "o", "b", "i")

    def test_duplicate_port_rejected(self):
        process = KpnProcess("p").writes("o", words())
        with pytest.raises(GraphError, match="duplicate"):
            process.writes("o", words())

    def test_unconnected_input_rejected(self):
        network = KpnNetwork()
        network.add(KpnProcess("lonely").reads("i", words()))
        with pytest.raises(GraphError, match="read from nowhere"):
            network.to_dataflow_graph()

    def test_unconnected_output_becomes_interface(self):
        network = KpnNetwork()
        network.add(KpnProcess("src").writes("o", words()))
        graph = network.to_dataflow_graph()  # validates without error
        assert len(graph) == 1


class TestConversion:
    def test_ports_become_bounded_dynamic(self):
        network = build_splitter_network([])
        graph = network.to_dataflow_graph()
        splitter = graph.get_actor("splitter")
        assert splitter.is_dynamic
        assert splitter.port("in").max_rate == 4

    def test_missing_output_write_detected(self):
        network = KpnNetwork()
        network.add(
            KpnProcess("bad", step=lambda k, i: {}).writes("o", words())
        )
        graph = network.to_dataflow_graph()
        with pytest.raises(GraphError, match="did not write"):
            graph.get_actor("bad").fire(0, {})


class TestEndToEnd:
    def test_kahn_determinism_through_spi(self):
        """The same network produces identical output streams on every
        mapping — Kahn's determinism property, preserved by SPI."""
        streams = []
        for assignment in (
            {"source": 0, "splitter": 0, "merger": 0},
            {"source": 0, "splitter": 1, "merger": 0},
            {"source": 0, "splitter": 1, "merger": 2},
        ):
            collect = []
            graph = build_splitter_network(collect).to_dataflow_graph()
            n_pes = max(assignment.values()) + 1
            partition = Partition(graph, n_pes, assignment)
            SpiSystem.compile(graph, partition).run(iterations=8)
            streams.append(collect)
        assert streams[0] == streams[1] == streams[2]
        # and the content is right: step k merges sorted 0..k%4
        assert streams[0][0] == [0]
        assert streams[0][3] == [0, 1, 2, 3]

    def test_channels_are_spi_dynamic(self):
        collect = []
        graph = build_splitter_network(collect).to_dataflow_graph()
        partition = Partition(
            graph, 2, {"source": 0, "splitter": 1, "merger": 0}
        )
        system = SpiSystem.compile(graph, partition)
        assert all(plan.dynamic for plan in system.channel_plans.values())

    def test_blocking_reads_order_messages(self):
        """Messages on one channel arrive in FIFO order (Kahn channel)."""
        collect = []
        graph = build_splitter_network(collect).to_dataflow_graph()
        partition = Partition(
            graph, 3, {"source": 0, "splitter": 1, "merger": 2}
        )
        SpiSystem.compile(graph, partition).run(iterations=6)
        sizes = [len(m) for m in collect]
        assert sizes == [(k % 4) + 1 for k in range(6)]
