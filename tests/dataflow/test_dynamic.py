"""Unit tests for dynamic-rate annotations and rate oracles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import DynamicRate, RateOracle


class TestDynamicRate:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            DynamicRate(0)
        with pytest.raises(ValueError):
            DynamicRate(5, minimum=6)
        with pytest.raises(ValueError):
            DynamicRate(5, minimum=-1)

    def test_admits(self):
        rate = DynamicRate(8, minimum=2)
        assert rate.admits(2)
        assert rate.admits(8)
        assert not rate.admits(1)
        assert not rate.admits(9)

    def test_zero_minimum_allowed_explicitly(self):
        rate = DynamicRate(4, minimum=0)
        assert rate.admits(0)

    def test_clamp(self):
        rate = DynamicRate(8, minimum=2)
        assert rate.clamp(1) == 2
        assert rate.clamp(100) == 8
        assert rate.clamp(5) == 5

    def test_frozen(self):
        rate = DynamicRate(3)
        with pytest.raises(AttributeError):
            rate.bound = 5


class TestRateOracle:
    def test_default_is_worst_case(self):
        oracle = RateOracle(DynamicRate(6))
        assert list(oracle.rates(4)) == [6, 6, 6, 6]

    def test_sequence_cycles(self):
        oracle = RateOracle(DynamicRate(5), sequence=[1, 3, 5])
        assert [oracle.rate(k) for k in range(6)] == [1, 3, 5, 1, 3, 5]

    def test_sequence_validated(self):
        with pytest.raises(ValueError, match="outside"):
            RateOracle(DynamicRate(3), sequence=[1, 9])

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            RateOracle(DynamicRate(3), sequence=[])

    def test_function_checked_on_use(self):
        oracle = RateOracle(DynamicRate(4), function=lambda k: k + 1)
        assert oracle.rate(0) == 1
        assert oracle.rate(3) == 4
        with pytest.raises(ValueError, match="outside"):
            oracle.rate(4)

    def test_sequence_and_function_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            RateOracle(DynamicRate(3), sequence=[1], function=lambda k: 1)

    def test_constant_constructor(self):
        oracle = RateOracle.constant(DynamicRate(9), 4)
        assert oracle.rate(123) == 4

    @given(bound=st.integers(1, 30), count=st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_worst_case_always_admissible(self, bound, count):
        spec = DynamicRate(bound)
        oracle = RateOracle.worst_case(spec)
        assert all(spec.admits(r) for r in oracle.rates(count))
