"""Figures 2 and 4 — the application dataflow graphs, as artifacts.

These figures are structural: the ADC pipeline of application 1
(A read / B FFT / C LU / D error / E Huffman) and the particle filter
of application 2 (E estimate / U update / S select, with the external
observation input and the unit-delay feedback).  The bench renders both
graphs (actor/edge tables plus Graphviz dot) and asserts their shape.
"""

import pytest

from conftest import crack_problem, emit, save_result
from repro.analysis import render_table
from repro.apps.lpc import build_adc_graph, frame_stream
from repro.apps.particle_filter import build_particle_filter_graph


def graph_table(graph):
    rows = [
        [
            edge.src_actor.name,
            edge.snk_actor.name,
            f"{edge.source.rate!r}",
            f"{edge.sink.rate!r}",
            str(edge.delay),
        ]
        for edge in graph.edges
    ]
    return render_table(
        ["from", "to", "prod rate", "cons rate", "delay"], rows
    )


@pytest.fixture(scope="module")
def adc():
    frames = frame_stream(total_samples=2 * 256, frame_size=256)
    return build_adc_graph(frames, order=8)


@pytest.fixture(scope="module")
def pf(crack_problem):
    model, _, observations = crack_problem
    return build_particle_filter_graph(
        model, observations, n_particles=40, n_pes=2
    )


def test_fig2_adc_graph(adc):
    text = graph_table(adc.graph)
    emit("Figure 2 (application 1 dataflow graph)", text)
    save_result("fig2_adc_graph.txt", text + "\n\n" + adc.graph.to_dot())

    names = [a.name for a in adc.graph.topological_order()]
    assert names == ["A", "B", "C", "D", "E"]
    assert len(adc.graph.edges) == 4


def test_fig4_pf_graph(pf):
    text = graph_table(pf.graph)
    emit("Figure 4 (application 2 dataflow graph, 2 PEs)", text)
    save_result("fig4_pf_graph.txt", text + "\n\n" + pf.graph.to_dot())

    # per PE: E -> U -> S1 -> S2 -> S3 chain with the delayed feedback
    for pe in (0, 1):
        feedback = pf.graph.edge_between(f"S3_{pe}", f"E_{pe}")
        assert feedback.delay == 20  # N/n initial particles
    # the S2 <-> S3 particle exchanges are the dynamic edges of fig. 4/5
    dynamic = {e.name for e in pf.graph.dynamic_edges}
    assert "particles_0_to_1" in dynamic
    assert "particles_1_to_0" in dynamic


def test_dot_exports_render(adc, pf):
    for graph in (adc.graph, pf.graph):
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")


def test_benchmark_graph_construction(benchmark, crack_problem):
    model, _, observations = crack_problem
    benchmark(
        lambda: build_particle_filter_graph(
            model, observations, n_particles=100, n_pes=2
        )
    )
