"""Table 1 — FPGA resources, 4-PE implementation of actor D (app 1).

Paper's table shape: a "Full system" row (percent of the device) and an
"SPI library (relative to full system)" row over slices / slice FFs /
4-input LUTs / Block RAMs.  The headline facts to preserve: the SPI
library is a minor share of the fabric (paper: ~12-14 %), owns a
disproportionate share of the Block RAMs (paper: 50 % — the dual-ported
receive buffers), and uses zero DSP48s.
"""

import pytest

from conftest import emit, save_result
from repro.apps.lpc import build_parallel_error_graph
from repro.platform import VIRTEX4_SX35
from repro.spi import SpiSystem

N_UNITS = 4
ORDER = 8
FRAME_SIZE = 256


def compile_system(speech_frames_factory):
    frames = speech_frames_factory(FRAME_SIZE)
    system = build_parallel_error_graph(frames, order=ORDER, n_units=N_UNITS)
    return SpiSystem.compile(system.graph, system.partition)


@pytest.fixture(scope="module")
def report(speech_frames_factory):
    spi = compile_system(speech_frames_factory)
    return spi.fpga_report(
        device=VIRTEX4_SX35,
        title=(
            "Table 1: FPGA resource requirements for 4 PE implementation "
            "of actor D of application 1"
        ),
    )


def test_table1_report(report):
    text = report.render()
    emit("Table 1 (reproduced)", text)
    save_result("table1_lpc_resources.txt", text)


def test_table1_spi_is_minor_fabric_share(report):
    relative = report.spi_relative_percent()
    assert 5.0 < relative["slices"] < 35.0
    assert 5.0 < relative["slice_ffs"] < 35.0
    assert 5.0 < relative["lut4"] < 35.0


def test_table1_spi_owns_half_the_brams(report):
    assert report.spi_relative_percent()["bram"] == pytest.approx(50.0, abs=15)


def test_table1_spi_uses_no_dsp48(report):
    assert report.spi_library.dsp48 == 0
    assert report.spi_relative_percent()["dsp48"] == 0.0


def test_table1_system_fits_device(report):
    assert VIRTEX4_SX35.fits(report.full_system)


def test_table1_benchmark_compile(benchmark, speech_frames_factory):
    """pytest-benchmark unit: full SPI compilation of the 4-PE system."""
    benchmark(compile_system, speech_frames_factory)
