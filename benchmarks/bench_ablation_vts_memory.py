"""Ablation — VTS buffer bounds: tightness and soundness.

The paper's claim for VTS is not that it shrinks buffers, but that it
makes **static allocation possible at all**: "general dynamic dataflow
... requires fully dynamic memory management", while VTS's token-size
bounds yield the finite eq. 1/2 allocations.  This bench quantifies:

* soundness — observed channel occupancy never exceeds the plan;
* tightness — the planned bytes are within a small factor of the
  occupancy a real workload actually reaches;
* the eq. 1 coexisting-bytes bound per converted edge.

A bound-free dynamic implementation has no finite row in this table —
that absence *is* the result.
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.apps.lpc import build_parallel_error_graph
from repro.dataflow import vts_convert
from repro.spi import SpiSystem

ITERATIONS = 6


@pytest.fixture(scope="module")
def setup(speech_frames_factory):
    frames = speech_frames_factory(256)
    system = build_parallel_error_graph(frames, order=8, n_units=2)
    conversion = vts_convert(system.graph)
    compiled = SpiSystem.compile(system.graph, system.partition)
    result = compiled.run(iterations=ITERATIONS)
    return system, conversion, compiled, result


def test_vts_memory_report(setup):
    _, conversion, compiled, result = setup
    rows = []
    total_planned = 0
    total_observed = 0
    for name, plan in compiled.channel_plans.items():
        planned = (plan.capacity_messages + 1) * plan.message_payload_bytes
        observed = result.buffer_high_water[name]
        total_planned += planned
        total_observed += observed
        rows.append([name, str(plan.message_payload_bytes), str(planned),
                     str(observed)])
    rows.append(["TOTAL", "-", str(total_planned), str(total_observed)])
    rows.append(["without VTS bounds", "-", "unbounded (dynamic alloc)", "-"])
    text = render_table(
        ["channel", "b_max bytes", "planned bytes", "observed high-water"],
        rows,
    )
    emit("Ablation: VTS static buffer allocation", text)
    save_result("ablation_vts_memory.txt", text)

    # soundness
    assert total_observed <= total_planned
    # tightness: static plan within 4x of what the workload really used
    assert total_planned <= 4 * total_observed


def test_eq1_bounds_per_edge(setup):
    """Every converted edge has a finite eq. 1 bound, and the packed
    tokens observed on the wire respect b_max."""
    _, conversion, compiled, result = setup
    for name, info in conversion.edge_info.items():
        assert info.c_bytes > 0
        assert info.b_max_bytes >= info.raw_token_bytes


def test_every_channel_within_its_bound(setup):
    _, _, compiled, result = setup
    for name, plan in compiled.channel_plans.items():
        bound = (plan.capacity_messages + 1) * plan.message_payload_bytes
        assert result.buffer_high_water[name] <= bound


def test_benchmark_vts_conversion(benchmark, speech_frames_factory):
    frames = speech_frames_factory(256)
    system = build_parallel_error_graph(frames, order=8, n_units=2)
    benchmark(lambda: vts_convert(system.graph))
