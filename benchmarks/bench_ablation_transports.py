"""Ablation — interconnect styles under the SPI methodology.

The paper's §2 notes the methodology adapts to other scheduling models;
this bench quantifies the trade on the 3-PE LPC error system:

* dedicated point-to-point links (the paper's FPGA library),
* a shared FCFS-arbitrated bus (cheap wires, run-time arbitration),
* the ordered-transaction bus (no arbitration at all — the grant
  sequence comes from the schedule — but transfers wait for their slot).
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.apps.lpc import build_parallel_error_graph
from repro.spi import SpiConfig, SpiSystem

TRANSPORTS = ("p2p", "shared_bus", "ordered_bus")
ITERATIONS = 5


def run_transport(speech_frames_factory, transport: str):
    frames = speech_frames_factory(256)
    system = build_parallel_error_graph(frames, order=8, n_units=3)
    compiled = SpiSystem.compile(
        system.graph, system.partition, SpiConfig(transport=transport)
    )
    return compiled.run(iterations=ITERATIONS)


@pytest.fixture(scope="module")
def sweep(speech_frames_factory):
    return {
        t: run_transport(speech_frames_factory, t) for t in TRANSPORTS
    }


def test_transport_report(sweep):
    rows = [
        [
            transport,
            f"{result.iteration_period_cycles:.0f}",
            f"{result.execution_time_us:.2f}",
            str(result.data_messages),
        ]
        for transport, result in sweep.items()
    ]
    text = render_table(
        ["transport", "cycles/frame", "time us", "messages"], rows
    )
    emit("Ablation: interconnect styles", text)
    save_result("ablation_transports.txt", text)


def test_same_functional_traffic(sweep):
    messages = {r.data_messages for r in sweep.values()}
    payloads = {r.payload_bytes for r in sweep.values()}
    assert len(messages) == 1
    assert len(payloads) == 1


def test_p2p_fastest(sweep):
    """Dedicated links never lose: everything else serialises transfers."""
    p2p = sweep["p2p"].iteration_period_cycles
    assert p2p <= sweep["shared_bus"].iteration_period_cycles
    assert p2p <= sweep["ordered_bus"].iteration_period_cycles


def test_ordered_bus_competitive_with_arbitrated_bus(sweep):
    """Dropping arbitration should roughly offset the lost flexibility
    on this regular, schedule-driven traffic pattern."""
    ordered = sweep["ordered_bus"].iteration_period_cycles
    shared = sweep["shared_bus"].iteration_period_cycles
    assert ordered <= shared * 1.25


def test_benchmark_shared_bus(benchmark, speech_frames_factory):
    benchmark(lambda: run_transport(speech_frames_factory, "shared_bus"))
