"""Kernel micro-benchmarks: targeted waitset wakeups vs broadcast retry.

Unlike the figure benches, this suite measures the *simulation kernel*
itself, not the modelled application: synthetic wide/deep/contended
task graphs built directly on :class:`~repro.platform.simulator
.Simulator` stress the park/wakeup machinery, and every workload runs
under both disciplines (``wakeups="targeted"`` vs ``"broadcast"``) so
the speedup of the waitset kernel is recorded, not assumed.

Workloads:

* **wide** — N independent producer->consumer PE pairs.  Broadcast
  re-evaluates every parked consumer on every completion anywhere;
  targeted wakes only the pair's own consumer.
* **deep** — one N-stage pipeline.  Stages park often but only the
  immediate downstream neighbour can progress.
* **contended** — one producer feeding N consumers round-robin.  At any
  instant N-1 consumers are parked on queues that did *not* change;
  broadcast pays N guard re-evaluations per token, targeted pays one.

The exported ``BENCH_kernel.json`` additionally records the end-to-end
wall-clock of the fig6/fig7 application benches at their highest PE
count under both disciplines — the "does the kernel win survive a real
workload" check the CI perf-smoke job gates on — and the steady-state
sweep: the same applications at ``STEADY_ITERATIONS`` with
``steady_state="off"`` vs ``"auto"``.  fig6 declares
``timing_periodic`` actors, so auto locks onto the iteration period
and extrapolates the remaining iterations analytically; fig7's
resampling traffic is data-dependent, so auto must decline and stay
within noise of off.  ``check_kernel_regression.py`` gates both.
"""

import time

import pytest

from conftest import QUICK, emit, save_bench_json
from repro.platform import ProcessingElement, PESequencer, Simulator, Waitset
from repro.spi import SpiSystem

ITERATIONS = 40 if QUICK else 200
WIDE_PAIRS = 16 if QUICK else 32
DEEP_STAGES = 16 if QUICK else 32
CONTENDED_CONSUMERS = 24 if QUICK else 48
#: wall-clock repeats per measurement (best-of, to shed scheduler noise)
REPEATS = 2 if QUICK else 3
#: graph iterations for the steady-state off-vs-auto application sweep
STEADY_ITERATIONS = 60 if QUICK else 200


class TokenQueue:
    """Minimal counting channel with a waitset (the bench's only resource)."""

    __slots__ = ("name", "tokens", "waitset")

    def __init__(self, name: str) -> None:
        self.name = name
        self.tokens = 0
        self.waitset = Waitset(name)

    def push(self) -> None:
        self.tokens += 1
        self.waitset.wake()

    def pop(self) -> None:
        if self.tokens <= 0:
            raise RuntimeError(f"queue {self.name}: pop on empty")
        self.tokens -= 1


class ProduceTask:
    """Unconditionally-ready task depositing into one or more queues."""

    def __init__(self, name, queues, cycles, sim, round_robin=False):
        self.name = name
        self.queues = list(queues)
        self.cycles = cycles
        self.sim = sim
        self.round_robin = round_robin
        self._count = 0

    def ready(self, now):
        return True

    def start(self, now):
        return self.cycles

    def finish(self, now):
        if self.round_robin:
            targets = [self.queues[self._count % len(self.queues)]]
        else:
            targets = self.queues
        self._count += 1
        for queue in targets:
            queue.push()
        self.sim.notify()


class ConsumeTask:
    """Parks until its input queue holds a token; optionally forwards."""

    def __init__(self, name, in_queue, cycles, sim, out_queue=None):
        self.name = name
        self.in_queue = in_queue
        self.out_queue = out_queue
        self.cycles = cycles
        self.sim = sim

    def ready(self, now):
        return self.in_queue.tokens > 0

    def wait_on(self, now):
        return [self.in_queue.waitset]

    def start(self, now):
        self.in_queue.pop()
        return self.cycles

    def finish(self, now):
        if self.out_queue is not None:
            self.out_queue.push()
        self.sim.notify()


def _run(build, wakeups: str) -> dict:
    """Build and drain one synthetic graph; return kernel statistics."""
    best_wall = None
    stats = None
    for _ in range(REPEATS):
        sim = Simulator(wakeups=wakeups)
        sequencers = build(sim)
        for sequencer in sequencers:
            sequencer.begin()
        start = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
            stats = sim
    events = stats.events_processed
    total_wakeups = stats.total_wakeups
    return {
        "wakeups": wakeups,
        "wall_seconds": best_wall,
        "events_processed": events,
        "events_per_second": events / best_wall if best_wall > 0 else 0.0,
        "parks": stats.parks,
        "retry_rounds": stats.retry_rounds,
        "targeted_wakeups": stats.targeted_wakeups,
        "broadcast_wakeups": stats.broadcast_wakeups,
        "spurious_wakeups": stats.spurious_wakeups,
        "total_wakeups": total_wakeups,
        "wakeups_per_event": total_wakeups / events if events else 0.0,
        "parks_per_event": stats.parks / events if events else 0.0,
        "spurious_fraction": (
            stats.spurious_wakeups / total_wakeups if total_wakeups else 0.0
        ),
    }


def _sequencer(sim, index, tasks):
    pe = ProcessingElement(index=index, name=f"PE{index}")
    return PESequencer(sim, pe, tasks, iterations=ITERATIONS)


def build_wide(sim):
    """N independent producer->consumer pairs on 2N PEs."""
    sequencers = []
    for i in range(WIDE_PAIRS):
        queue = TokenQueue(f"wide{i}")
        producer = ProduceTask(f"prod{i}", [queue], cycles=3 + i % 5, sim=sim)
        consumer = ConsumeTask(f"cons{i}", queue, cycles=2 + i % 3, sim=sim)
        sequencers.append(_sequencer(sim, 2 * i, [producer]))
        sequencers.append(_sequencer(sim, 2 * i + 1, [consumer]))
    return sequencers


def build_deep(sim):
    """One pipeline of N stages, each on its own PE."""
    queues = [TokenQueue(f"deep{i}") for i in range(DEEP_STAGES)]
    sequencers = [
        _sequencer(
            sim, 0, [ProduceTask("source", [queues[0]], cycles=4, sim=sim)]
        )
    ]
    for i in range(DEEP_STAGES):
        out_queue = queues[i + 1] if i + 1 < DEEP_STAGES else None
        stage = ConsumeTask(
            f"stage{i}", queues[i], cycles=4, sim=sim, out_queue=out_queue
        )
        sequencers.append(_sequencer(sim, i + 1, [stage]))
    return sequencers


def build_contended(sim):
    """One producer feeding N consumers round-robin: the broadcast
    worst case (every token re-evaluates all N parked guards)."""
    queues = [TokenQueue(f"cont{i}") for i in range(CONTENDED_CONSUMERS)]
    producer = ProduceTask(
        "producer", queues, cycles=1, sim=sim, round_robin=True
    )
    source = PESequencer(
        sim,
        ProcessingElement(index=0, name="PE0"),
        [producer],
        iterations=ITERATIONS * CONTENDED_CONSUMERS,
    )
    sequencers = [source]
    for i, queue in enumerate(queues):
        consumer = ConsumeTask(f"cons{i}", queue, cycles=2, sim=sim)
        sequencers.append(_sequencer(sim, i + 1, [consumer]))
    return sequencers


WORKLOADS = {
    "wide": build_wide,
    "deep": build_deep,
    "contended": build_contended,
}


@pytest.fixture(scope="module")
def kernel_sweep():
    return {
        (name, wakeups): _run(build, wakeups)
        for name, build in WORKLOADS.items()
        for wakeups in ("targeted", "broadcast")
    }


def _speedup(sweep, name: str) -> float:
    return (
        sweep[(name, "targeted")]["events_per_second"]
        / sweep[(name, "broadcast")]["events_per_second"]
    )


def test_kernel_report(kernel_sweep):
    rows = ["workload    discipline  events/s      wakeups/evt  spurious"]
    for (name, wakeups), stats in sorted(kernel_sweep.items()):
        rows.append(
            f"{name:<11} {wakeups:<11} {stats['events_per_second']:>12.0f}"
            f"  {stats['wakeups_per_event']:>11.3f}"
            f"  {stats['spurious_fraction']:>8.3f}"
        )
    for name in WORKLOADS:
        rows.append(f"{name}: targeted/broadcast = {_speedup(kernel_sweep, name):.2f}x")
    emit("Kernel wakeup disciplines", "\n".join(rows))


def test_kernel_results_identical_across_disciplines(kernel_sweep):
    """Same simulation, different kernel: parks and delivered work match
    in structure (both drain all iterations; wakeup mix differs)."""
    for name in WORKLOADS:
        targeted = kernel_sweep[(name, "targeted")]
        broadcast = kernel_sweep[(name, "broadcast")]
        assert targeted["broadcast_wakeups"] == 0
        assert broadcast["targeted_wakeups"] == 0
        assert broadcast["retry_rounds"] > 0


def test_kernel_targeted_wakes_less(kernel_sweep):
    """The point of the waitset kernel: far fewer guard re-evaluations."""
    for name in WORKLOADS:
        targeted = kernel_sweep[(name, "targeted")]
        broadcast = kernel_sweep[(name, "broadcast")]
        assert targeted["total_wakeups"] < broadcast["total_wakeups"]
        assert targeted["spurious_fraction"] <= broadcast["spurious_fraction"]


def test_kernel_contended_speedup(kernel_sweep):
    """The contended workload must show a decisive targeted win.  The
    committed baseline records >= 2x; the in-test gate is looser so a
    noisy CI runner cannot flake it."""
    assert _speedup(kernel_sweep, "contended") >= 1.5


def _fig6_system() -> SpiSystem:
    from repro.apps.lpc import build_parallel_error_graph, frame_stream

    size = 256 if QUICK else 512
    frames = frame_stream(total_samples=2 * size, frame_size=size)
    system = build_parallel_error_graph(frames, order=8, n_units=4)
    return SpiSystem.compile(system.graph, system.partition)


def _fig7_system() -> SpiSystem:
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        simulate_crack_history,
    )
    from repro.apps.particle_filter import build_particle_filter_graph

    model = CrackGrowthModel()
    _, observations = simulate_crack_history(model, steps=8, seed=7)
    system = build_particle_filter_graph(
        model,
        observations,
        n_particles=150 if QUICK else 300,
        n_pes=2,
    )
    return SpiSystem.compile(system.graph, system.partition)


def _fig6_wall(wakeups: str) -> float:
    system = _fig6_system()
    start = time.perf_counter()
    system.run(iterations=3 if QUICK else 5, wakeups=wakeups)
    return time.perf_counter() - start


def _fig7_wall(wakeups: str) -> float:
    system = _fig7_system()
    start = time.perf_counter()
    system.run(iterations=4 if QUICK else 6, wakeups=wakeups)
    return time.perf_counter() - start


def _steady_measure(build_system, steady_state: str):
    """Best-of-REPEATS wall for one steady-state mode.

    A fresh system is compiled for every run: the application kernels
    are stateful (RNG, collectors), so reusing one would change the
    simulated work between repeats.
    """
    best_wall = None
    best_run = None
    for _ in range(REPEATS):
        system = build_system()
        start = time.perf_counter()
        run = system.run(
            iterations=STEADY_ITERATIONS, steady_state=steady_state
        )
        wall = time.perf_counter() - start
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_run = run
    return best_wall, best_run


@pytest.fixture(scope="module")
def steady_sweep():
    """fig6/fig7 at STEADY_ITERATIONS, steady-state off vs auto."""
    sweep = {}
    for fig, build_system in (("fig6", _fig6_system), ("fig7", _fig7_system)):
        wall_off, run_off = _steady_measure(build_system, "off")
        wall_auto, run_auto = _steady_measure(build_system, "auto")
        # one instrumented off run counts the kernel events the auto
        # run gets to skip — the "effective events/sec" numerator
        events_off = build_system().run(
            iterations=STEADY_ITERATIONS, metrics=True
        ).metrics["simulator"]["events_processed"]
        sweep[fig] = {
            "iterations": STEADY_ITERATIONS,
            "off_wall_seconds": wall_off,
            "auto_wall_seconds": wall_auto,
            "speedup": wall_off / wall_auto if wall_auto > 0 else 0.0,
            "events_off": events_off,
            "events_per_second_off": (
                events_off / wall_off if wall_off > 0 else 0.0
            ),
            "effective_events_per_second_auto": (
                events_off / wall_auto if wall_auto > 0 else 0.0
            ),
            "cycles_off": run_off.cycles,
            "cycles_auto": run_auto.cycles,
            "iteration_period_cycles": run_auto.iteration_period_cycles,
            "detected_at": run_auto.steady_state_detected_at,
            "detected_period_iterations": (
                run_auto.detected_period_iterations
            ),
            "detected_period_cycles": run_auto.detected_period_cycles,
            "extrapolated_iterations": run_auto.extrapolated_iterations,
            "compiled_firings": run_auto.compiled_firings,
        }
    return sweep


def test_steady_state_report(steady_sweep):
    rows = ["fig   off wall   auto wall  speedup  detected  extrapolated"]
    for fig, stats in sorted(steady_sweep.items()):
        detected = stats["detected_at"]
        rows.append(
            f"{fig:<5} {stats['off_wall_seconds']:>8.3f}s"
            f" {stats['auto_wall_seconds']:>8.3f}s"
            f" {stats['speedup']:>7.1f}x"
            f"  {'-' if detected is None else detected:>8}"
            f"  {stats['extrapolated_iterations']:>12}"
        )
    emit("Steady-state off vs auto", "\n".join(rows))


def test_steady_state_bit_identical_results(steady_sweep):
    """Extrapolation is exact, not approximate: same final cycle count
    and per-iteration period whether the tail was simulated or warped."""
    for fig, stats in steady_sweep.items():
        assert stats["cycles_off"] == stats["cycles_auto"], fig


def test_steady_state_arms_only_when_declared(steady_sweep):
    """fig6's actors declare timing_periodic, fig7's resampling traffic
    is data-dependent: auto must warp the former and decline the latter."""
    fig6 = steady_sweep["fig6"]
    assert fig6["detected_at"] is not None
    assert fig6["extrapolated_iterations"] > 0
    assert fig6["detected_period_cycles"] > 0
    fig7 = steady_sweep["fig7"]
    assert fig7["detected_at"] is None
    assert fig7["extrapolated_iterations"] == 0


def test_steady_state_speedup(steady_sweep):
    """In-test floor, looser than the committed-baseline gate in
    check_kernel_regression.py so a noisy CI runner cannot flake it."""
    assert steady_sweep["fig6"]["speedup"] >= 2.0


def test_kernel_bench_export(kernel_sweep, steady_sweep):
    """Emit BENCH_kernel.json: all workloads x disciplines, the
    fig6/fig7 wall-clock before/after at their highest PE counts, and
    the steady-state off-vs-auto sweep."""
    fig_walls = {}
    for fig, measure_wall in (("fig6", _fig6_wall), ("fig7", _fig7_wall)):
        walls = {w: min(measure_wall(w) for _ in range(REPEATS))
                 for w in ("targeted", "broadcast")}
        fig_walls[fig] = {
            "targeted_wall_seconds": walls["targeted"],
            "broadcast_wall_seconds": walls["broadcast"],
            "speedup": (
                walls["broadcast"] / walls["targeted"]
                if walls["targeted"] > 0
                else 0.0
            ),
        }

    contended = kernel_sweep[("contended", "targeted")]
    path = save_bench_json(
        "kernel",
        makespan_cycles=contended["events_processed"],
        # the sweep's periodic application: fig6's detected steady-state
        # period (was hardcoded 0.0 — validate_bench now rejects that)
        iteration_period_cycles=steady_sweep["fig6"][
            "iteration_period_cycles"
        ],
        wall_seconds=contended["wall_seconds"],
        extra={
            "periodic": True,
            "workloads": {
                f"{name}/{wakeups}": stats
                for (name, wakeups), stats in kernel_sweep.items()
            },
            "speedups": {
                name: _speedup(kernel_sweep, name) for name in WORKLOADS
            },
            "applications": fig_walls,
            "steady_state": steady_sweep,
        },
    )
    assert path.exists()
