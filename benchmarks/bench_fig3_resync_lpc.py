"""Figure 3 — resynchronization of the 3-PE actor-D system (app 1).

The paper's figure 3 shows the synchronization graph of the 3-PE error
computation before and after resynchronization.  The measurable content:
each of the 9 channels (3 per PE: frame, coefficients, errors) carries
an acknowledgment edge under UBS, and after resynchronization every one
of them is redundant — the data path through the I/O interface loop
already enforces the throttling — so the per-iteration synchronization
message count drops accordingly.
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.apps.lpc import build_parallel_error_graph
from repro.mapping import EdgeKind
from repro.spi import SpiConfig, SpiSystem

N_UNITS = 3
FRAME_SIZE = 256
ORDER = 8


def compile_variants(speech_frames_factory):
    frames = speech_frames_factory(FRAME_SIZE)
    system = build_parallel_error_graph(frames, order=ORDER, n_units=N_UNITS)
    before = SpiSystem.compile(
        system.graph,
        system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=False),
    )
    after = SpiSystem.compile(
        system.graph,
        system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=True),
    )
    return before, after


@pytest.fixture(scope="module")
def variants(speech_frames_factory):
    return compile_variants(speech_frames_factory)


def _ack_count(system):
    reference = (
        system.resync_result.graph
        if system.resync_result is not None
        else system.sync_graph
    )
    return len(reference.edges_of_kind(EdgeKind.ACK))


def test_fig3_report(variants):
    before, after = variants
    run_before = before.run(iterations=4)
    run_after = after.run(iterations=4)
    rows = [
        [
            "ack (synchronization) edges",
            str(_ack_count(before)),
            str(_ack_count(after)),
        ],
        [
            "sync messages / 4 iterations (measured)",
            str(run_before.ack_messages),
            str(run_after.ack_messages),
        ],
        [
            "execution time (us, 4 iterations)",
            f"{run_before.execution_time_us:.2f}",
            f"{run_after.execution_time_us:.2f}",
        ],
    ]
    text = render_table(
        ["3-PE actor D (application 1)", "before resync", "after resync"],
        rows,
    )
    emit("Figure 3 (resynchronization, reproduced)", text)
    save_result("fig3_resync_lpc.txt", text)

    assert _ack_count(before) == 3 * N_UNITS
    assert _ack_count(after) == 0
    assert run_before.ack_messages > 0
    assert run_after.ack_messages == 0
    assert run_after.execution_time_us <= run_before.execution_time_us


def test_fig3_semantics_preserved(variants):
    """Resynchronization must keep every original constraint implied."""
    before, after = variants
    assert after.resync_result is not None
    rho = after.resync_result.graph.min_delay_paths()
    for edge in after.sync_graph.edges:
        if edge.kind == EdgeKind.ACK:
            continue  # acks were the removable constraints
        assert rho[edge.src].get(edge.snk, edge.delay + 1) <= edge.delay


def test_fig3_benchmark_resynchronize(benchmark, speech_frames_factory):
    """pytest-benchmark unit: the full resynchronizing compile."""
    frames = speech_frames_factory(FRAME_SIZE)
    system = build_parallel_error_graph(frames, order=ORDER, n_units=N_UNITS)

    def compile_with_resync():
        return SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=True),
        )

    benchmark(compile_with_resync)
