"""Cold-analysis wall-clock: the array-backed engine vs the legacy one.

The workload is the cold-cache compile pipeline every *distinct* graph
pays (paper §3/§4): HSDF expansion, self-timed scheduling, IPC/sync
graph derivation, resynchronization, and the MCM bound.  Two fuzzer
cases are measured end to end and per stage:

* **large_rep** — conformance graphs whose repetition-vector magnitude
  is cranked up (``max_repetition=12``); token enumeration and repeated
  Bellman–Ford probes dominate the legacy engine here;
* **resync_heavy** — dense many-PE graphs (``max_pes=4``, high extra
  edge probability) where the legacy resynchronizer's per-candidate
  full MCM and per-removal Floyd–Warshall dominate.  This is the
  *contended analysis case* gated in quick mode.

Both engines run in-process: the legacy stack is selected per call via
``algorithm=`` / ``method=`` / ``engine=`` / ``incremental=`` switches,
and end to end via ``REPRO_ANALYSIS_ENGINE=legacy``.  A 50-seed
Howard-vs-Lawler equivalence campaign rides along so the committed
baseline records bit-compatible verdicts, not just speed.

``BENCH_analysis.json`` records per-case and per-stage wall clocks and
speedups; ``check_analysis_regression.py`` gates CI on the speedup
floors; ``analysis_stages.csv`` is the per-stage artifact CI uploads.
"""

import math
import os
import time

import pytest

from conftest import QUICK, RESULTS_DIR, emit, save_bench_json

from repro.conformance.generator import GraphShape, generate_spec
from repro.conformance.spec import build_case
from repro.dataflow.hsdf import hsdf_expand
from repro.mapping import (
    maximum_cycle_mean,
    maximum_cycle_mean_result,
    resynchronize,
    simulate_selftimed,
)
from repro.spi import SpiConfig, SpiSystem

#: end-to-end cold compiles per case (each on a distinct seed)
COMPILE_SEEDS = 3 if QUICK else 8
#: per-stage timing repeats (best-of to shed scheduler noise)
REPEATS = 2 if QUICK else 4
#: Howard-vs-Lawler verdict campaign size (acceptance: 50 in full mode)
EQUIVALENCE_SEEDS = 15 if QUICK else 50

CASES = {
    "large_rep": GraphShape(
        min_actors=7,
        max_actors=10,
        max_repetition=12,
        max_rate_factor=2,
        extra_edge_prob=0.5,
        feedback_prob=1.0,
        delay_prob=0.4,
        dynamic_prob=0.0,
        max_pes=3,
    ),
    "resync_heavy": GraphShape(
        min_actors=9,
        max_actors=12,
        max_repetition=3,
        extra_edge_prob=0.9,
        feedback_prob=1.0,
        delay_prob=0.6,
        dynamic_prob=0.0,
        max_pes=4,
    ),
}


def _cases(name, count, start=0):
    shape = CASES[name]
    return [
        build_case(generate_spec(1000 + start + i, shape))
        for i in range(count)
    ]


def _best_of(repeats, fn, legacy=False):
    """Best-of wall clock; ``legacy`` selects the legacy engine for any
    nested analysis calls (e.g. the MCM probes inside resynchronize)."""
    if legacy:
        os.environ["REPRO_ANALYSIS_ENGINE"] = "legacy"
    try:
        best = math.inf
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best
    finally:
        os.environ.pop("REPRO_ANALYSIS_ENGINE", None)


def _compile_cold(case):
    system = SpiSystem.compile(case.graph, case.partition, SpiConfig())
    system.mcm_result()  # the bound every campaign run reads
    return system


def _end_to_end(cases, legacy):
    """Total cold-analysis wall across the case list, one engine."""
    if legacy:
        os.environ["REPRO_ANALYSIS_ENGINE"] = "legacy"
    else:
        os.environ.pop("REPRO_ANALYSIS_ENGINE", None)
    try:
        started = time.perf_counter()
        for case in cases:
            _compile_cold(case)
        return time.perf_counter() - started
    finally:
        os.environ.pop("REPRO_ANALYSIS_ENGINE", None)


def _stage_times(case):
    """Best-of wall clock per pipeline stage, legacy vs fast."""
    system = _compile_cold(case)
    reference = (
        system.resync_result.graph
        if system.resync_result is not None
        else system.sync_graph
    )
    sync = system.sync_graph
    stages = {
        "hsdf_expand": (
            lambda: hsdf_expand(case.graph, method="enumerate"),
            lambda: hsdf_expand(case.graph, method="closed_form"),
        ),
        "mcm": (
            lambda: maximum_cycle_mean(reference, algorithm="lawler"),
            lambda: maximum_cycle_mean(reference, algorithm="howard"),
        ),
        "resync": (
            lambda: resynchronize(sync, incremental=False),
            lambda: resynchronize(sync, incremental=True),
        ),
        # the shipped default is "auto": vectorized above the ~500-vertex
        # numpy crossover, python below — so it never loses to legacy
        "simulate": (
            lambda: simulate_selftimed(reference, 30, engine="python"),
            lambda: simulate_selftimed(reference, 30, engine="auto"),
        ),
    }
    rows = {}
    for stage, (legacy_fn, fast_fn) in stages.items():
        legacy = _best_of(REPEATS, legacy_fn, legacy=True)
        fast = _best_of(REPEATS, fast_fn)
        rows[stage] = {
            "legacy_seconds": legacy,
            "fast_seconds": fast,
            "speedup": legacy / fast if fast > 0 else 0.0,
        }
    return rows


def _equivalence_campaign():
    """Howard vs Lawler verdicts on the conformance population."""
    shapes = [
        GraphShape(),
        GraphShape(collective_prob=0.9, max_pes=3),
        GraphShape(batch_prob=0.9, max_batch=4, max_pes=3),
    ]
    agreements = 0
    for index in range(EQUIVALENCE_SEEDS):
        case = build_case(
            generate_spec(index, shapes[index % len(shapes)])
        )
        system = SpiSystem.compile(case.graph, case.partition, SpiConfig())
        reference = (
            system.resync_result.graph
            if system.resync_result is not None
            else system.sync_graph
        )
        howard = maximum_cycle_mean_result(reference, algorithm="howard")
        lawler = maximum_cycle_mean(reference, algorithm="lawler")
        if math.isinf(lawler):
            agreements += math.isinf(howard.value)
        else:
            agreements += math.isclose(
                howard.value, lawler, rel_tol=1e-5, abs_tol=1e-5
            )
    return {"seeds": EQUIVALENCE_SEEDS, "agreements": agreements}


@pytest.fixture(scope="module")
def analysis():
    results = {}
    for name in CASES:
        cases = _cases(name, COMPILE_SEEDS)
        # interleave engines per repeat so drift hits both equally
        legacy = min(
            _end_to_end(cases, legacy=True) for _ in range(REPEATS)
        )
        fast = min(
            _end_to_end(cases, legacy=False) for _ in range(REPEATS)
        )
        results[name] = {
            "compiles": COMPILE_SEEDS,
            "legacy_seconds": legacy,
            "fast_seconds": fast,
            "speedup": legacy / fast if fast > 0 else 0.0,
            "stages": _stage_times(cases[0]),
        }
    return {"cases": results, "equivalence": _equivalence_campaign()}


def _stage_csv(results):
    lines = ["case,stage,legacy_seconds,fast_seconds,speedup"]
    for name, case in sorted(results.items()):
        lines.append(
            f"{name},total,{case['legacy_seconds']:.4f},"
            f"{case['fast_seconds']:.4f},{case['speedup']:.2f}"
        )
        for stage, row in sorted(case["stages"].items()):
            lines.append(
                f"{name},{stage},{row['legacy_seconds']:.4f},"
                f"{row['fast_seconds']:.4f},{row['speedup']:.2f}"
            )
    return "\n".join(lines)


def test_analysis_report(analysis):
    lines = []
    for name, case in sorted(analysis["cases"].items()):
        lines.append(
            f"{name}: cold analysis x{case['compiles']} — legacy "
            f"{case['legacy_seconds']:.3f}s, fast "
            f"{case['fast_seconds']:.3f}s, {case['speedup']:.1f}x"
        )
        for stage, row in sorted(case["stages"].items()):
            lines.append(
                f"  {stage:<12} {row['legacy_seconds'] * 1e3:8.2f} ms -> "
                f"{row['fast_seconds'] * 1e3:8.2f} ms  "
                f"({row['speedup']:.1f}x)"
            )
    equivalence = analysis["equivalence"]
    lines.append(
        f"howard==lawler verdicts: {equivalence['agreements']}/"
        f"{equivalence['seeds']} seeds"
    )
    emit("Cold-analysis wall clock (legacy vs array-backed engine)", "\n".join(lines))


def test_analysis_verdicts_bit_compatible(analysis):
    equivalence = analysis["equivalence"]
    assert equivalence["agreements"] == equivalence["seeds"]


def test_analysis_speedup_floors(analysis):
    """Loose in-test floors; check_analysis_regression.py applies the
    strict committed-baseline gates (5x large_rep / 2x resync_heavy
    full mode, 2x contended quick mode)."""
    floor = 1.5 if QUICK else 2.0
    for name, case in analysis["cases"].items():
        assert case["speedup"] >= floor, (
            f"{name}: cold-analysis speedup {case['speedup']:.2f}x "
            f"below {floor}x"
        )


def test_analysis_stage_csv(analysis):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "analysis_stages.csv"
    path.write_text(_stage_csv(analysis["cases"]) + "\n")
    assert path.exists()


def test_analysis_bench_export(analysis):
    wall = sum(
        case["fast_seconds"] for case in analysis["cases"].values()
    )
    path = save_bench_json(
        "analysis",
        makespan_cycles=0,
        iteration_period_cycles=0.0,
        wall_seconds=wall,
        extra={
            "cases": analysis["cases"],
            "equivalence": analysis["equivalence"],
            "compile_seeds": COMPILE_SEEDS,
            "repeats": REPEATS,
        },
    )
    assert path.exists()
