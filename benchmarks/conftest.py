"""Shared helpers for the experiment benchmarks.

Every bench target regenerates one table or figure of the paper:
it sweeps the paper's parameters on the simulated platform, prints the
same rows/series the paper reports (run ``pytest benchmarks/ -s`` to see
them), writes a CSV next to this file under ``results/``, asserts the
qualitative shape, and times one representative unit of work through
pytest-benchmark.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: reduced sweeps for the CI benchmark-smoke job (same shapes, fewer
#: points); set REPRO_BENCH_QUICK=1 to enable
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def save_result(name: str, text: str) -> Path:
    """Persist a rendered table/series under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


def _committed_baseline_is_full_mode(name: str) -> bool:
    """True when ``BENCH_<name>.json`` exists and was produced in full
    (non-quick) mode — i.e. it is a committed baseline a quick run must
    not clobber."""
    committed = RESULTS_DIR / f"BENCH_{name}.json"
    if not committed.exists():
        return False
    try:
        document = json.loads(committed.read_text())
    except (OSError, ValueError):
        return False
    return document.get("quick") is False


def save_bench_json(
    name: str,
    makespan_cycles: int,
    iteration_period_cycles: float,
    wall_seconds: float,
    extra=None,
) -> Path:
    """Emit ``BENCH_<name>.json`` under benchmarks/results/.

    The perf-trajectory document the CI benchmark-smoke job uploads as
    an artifact; see :mod:`repro.observability.bench` for the schema.

    A quick-mode run never overwrites a committed full-mode baseline:
    when ``REPRO_BENCH_QUICK=1`` and ``BENCH_<name>.json`` holds a
    full-mode document, the quick document is diverted to
    ``BENCH_<name>.quick.json`` (same schema, ``quick: true``) and the
    regression checkers are pointed at that file instead — so a CI run
    cannot silently replace the stronger baseline it gates against.
    """
    from repro.observability import (
        bench_document,
        validate_bench,
        write_bench_json,
    )

    document = bench_document(
        name,
        makespan_cycles=makespan_cycles,
        iteration_period_cycles=iteration_period_cycles,
        wall_seconds=wall_seconds,
        quick=QUICK,
        extra=extra,
    )
    if QUICK and _committed_baseline_is_full_mode(name):
        validate_bench(document)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{name}.quick.json"
        path.write_text(json.dumps(document, indent=2) + "\n")
        return path
    return write_bench_json(RESULTS_DIR, document)


def emit(title: str, text: str) -> None:
    """Print a reproduced artefact (visible with ``pytest -s``)."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


@pytest.fixture(scope="session")
def speech_frames_factory():
    """Frame sets per (total, size) — cached across benches."""
    from repro.apps.lpc import frame_stream

    cache = {}

    def factory(frame_size: int, count: int = 2):
        key = (frame_size, count)
        if key not in cache:
            cache[key] = frame_stream(
                total_samples=count * frame_size, frame_size=frame_size
            )
        return cache[key]

    return factory


@pytest.fixture(scope="session")
def crack_problem():
    """One crack-growth tracking problem shared by the PF benches."""
    from repro.apps.particle_filter import (
        CrackGrowthModel,
        simulate_crack_history,
    )

    model = CrackGrowthModel()
    truth, observations = simulate_crack_history(model, steps=8, seed=7)
    return model, truth, observations
