#!/usr/bin/env python
"""Gate the campaign benchmark against its committed baseline.

Usage::

    python benchmarks/check_campaign_regression.py CURRENT.json [BASELINE.json]

Four absolute gates always apply (they are machine-independent — both
sides of each ratio run on the same box in the same process):

* **throughput floor** — the service campaign must beat one process per
  run by >= 3x in full mode (the ISSUE's acceptance bar) or >= 1.5x in
  quick mode (smaller campaigns amortise less startup);
* **cache floor** — the repeated-graph campaign's analysis-cache hit
  rate must stay >= 0.9;
* **no failed units** — shard-level failure isolation must not be
  exercised on the healthy workload;
* **cold-miss floor** (when the document has a ``cold_miss`` section) —
  on distinct seeds with the cache off, the array-backed analysis
  engine must keep a >= 1.5x (1.2x quick) throughput win over the
  legacy engine.

When a baseline produced with the same ``quick`` flag is given, the
speedup and service runs/sec are additionally compared against it with
a tolerance; quick-vs-full pairs skip the comparison (campaign sizes
differ, so the numbers are incomparable) and rely on the floors.

Exit status 0 = pass, 1 = regression, 2 = unusable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: fraction of the baseline a metric may lose before the gate fails
TOLERANCE = 0.30

#: service-vs-serial throughput floors (the full-mode one is the
#: acceptance criterion: >= 3x on the 200-seed repeated-graph campaign)
SPEEDUP_FLOOR_FULL = 3.0
SPEEDUP_FLOOR_QUICK = 1.5

#: analysis-cache hit-rate floor on the repeated-graph workload
HIT_RATE_FLOOR = 0.9

#: cold-miss (cache-off, distinct-seed) fast-vs-legacy engine floors —
#: the cache can't help distinct graphs, so this isolates the analysis
#: engine's own win
COLD_MISS_FLOOR_FULL = 1.5
COLD_MISS_FLOOR_QUICK = 1.2


def _load(path: str) -> dict:
    document = json.loads(Path(path).read_text())
    if (
        document.get("schema") != "repro.bench/1"
        or document.get("name") != "campaign"
    ):
        raise ValueError(f"{path}: not a campaign bench document")
    return document


def check(current: dict, baseline: dict = None) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    extra = current["extra"]
    speedup = extra["speedup"]
    hit_rate = extra["cache"]["hit_rate"]
    failed = extra["service"]["failed_units"]

    floor = SPEEDUP_FLOOR_QUICK if current.get("quick") else SPEEDUP_FLOOR_FULL
    if speedup < floor:
        failures.append(
            f"campaign speedup {speedup:.2f}x vs one-process-per-run fell "
            f"below the {floor:.1f}x floor"
        )
    if hit_rate < HIT_RATE_FLOOR:
        failures.append(
            f"analysis-cache hit rate {hit_rate:.3f} fell below the "
            f"{HIT_RATE_FLOOR:.2f} floor"
        )
    if failed:
        failures.append(f"{failed} campaign unit(s) failed")

    cold = extra.get("cold_miss")
    if cold is not None:
        cold_floor = (
            COLD_MISS_FLOOR_QUICK
            if current.get("quick")
            else COLD_MISS_FLOOR_FULL
        )
        if cold["speedup"] < cold_floor:
            failures.append(
                f"cold-miss engine speedup {cold['speedup']:.2f}x fell "
                f"below the {cold_floor:.1f}x floor"
            )

    if baseline is None:
        pass
    elif baseline.get("quick") == current.get("quick"):
        base_speedup = baseline["extra"]["speedup"]
        if speedup < base_speedup * (1.0 - TOLERANCE):
            failures.append(
                f"speedup regressed {base_speedup:.2f}x -> {speedup:.2f}x "
                f"(> {TOLERANCE:.0%} loss)"
            )
        base_rps = baseline["extra"]["service"]["runs_per_sec"]
        cur_rps = extra["service"]["runs_per_sec"]
        if cur_rps < base_rps * (1.0 - TOLERANCE):
            failures.append(
                f"service throughput regressed {base_rps:.2f} -> "
                f"{cur_rps:.2f} runs/s (> {TOLERANCE:.0%} loss)"
            )
    else:
        print(
            "note: baseline/current quick flags differ; baseline "
            "comparison skipped (absolute floors still apply)"
        )
    return failures


def main(argv) -> int:
    if len(argv) not in (2, 3):
        print(__doc__)
        return 2
    try:
        current = _load(argv[1])
        baseline = _load(argv[2]) if len(argv) == 3 else None
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}")
        return 2
    failures = check(current, baseline)
    if failures:
        print("campaign benchmark regression:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    extra = current["extra"]
    print(
        f"campaign benchmark OK: {extra['speedup']:.2f}x vs serial, "
        f"cache hit rate {extra['cache']['hit_rate']:.3f}, "
        f"{extra['runs']} runs"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
