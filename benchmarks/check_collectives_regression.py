#!/usr/bin/env python
"""Gate the collectives benchmark against its committed baseline.

Usage::

    python benchmarks/check_collectives_regression.py BASELINE.json CURRENT.json

Gates, all applied to the current document:

* **p >= 4 win** — at every PE count >= 4 the collective build must
  move strictly fewer wire messages AND strictly fewer wire bytes than
  the point-to-point fan-out (the ISSUE's acceptance criterion).
* **message-count floor** — at the largest PE count the p2p/collective
  wire-message ratio must stay >= 1.25.  The ratio is a property of the
  lowering (counts are deterministic), so it holds in quick and full
  mode alike and can be checked against a full-mode baseline from a
  quick CI run.
* **same-mode comparison** (same ``quick`` flag only) — wire messages
  and wire bytes of the collective build must not exceed the baseline
  at any PE count present in both documents; the counts are
  deterministic, so any growth is a lowering regression, not noise.

Exit status 0 = pass, 1 = regression, 2 = unusable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: minimum p2p/collective wire-message ratio at the largest PE count
REDUCTION_FLOOR = 1.25


def load(path: str) -> dict:
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}")
        raise SystemExit(2)
    if document.get("name") != "collectives" or "rows" not in document.get(
        "extra", {}
    ):
        print(f"{path} is not a collectives bench document")
        raise SystemExit(2)
    return document


def check_current(current: dict) -> list:
    failures = []
    rows = current["extra"]["rows"]
    for row in rows:
        n = row["n_pes"]
        p2p, coll = row["p2p"], row["collective"]
        if n < 4:
            continue
        if coll["wire_messages"] >= p2p["wire_messages"]:
            failures.append(
                f"p={n}: collective wire messages {coll['wire_messages']} "
                f"not below p2p {p2p['wire_messages']}"
            )
        if coll["wire_bytes"] >= p2p["wire_bytes"]:
            failures.append(
                f"p={n}: collective wire bytes {coll['wire_bytes']} "
                f"not below p2p {p2p['wire_bytes']}"
            )
    largest = max(rows, key=lambda r: r["n_pes"])
    coll_msgs = largest["collective"]["wire_messages"]
    if coll_msgs <= 0:
        failures.append("largest-p collective build sent no wire messages")
    else:
        ratio = largest["p2p"]["wire_messages"] / coll_msgs
        if ratio < REDUCTION_FLOOR:
            failures.append(
                f"p={largest['n_pes']}: message reduction {ratio:.2f}x "
                f"below the {REDUCTION_FLOOR}x floor"
            )
    return failures


def check_against_baseline(baseline: dict, current: dict) -> list:
    if baseline.get("quick") != current.get("quick"):
        print(
            "baseline/current were produced in different modes "
            "(quick vs full); applying the current-document gates only"
        )
        return []
    failures = []
    baseline_rows = {
        row["n_pes"]: row for row in baseline["extra"]["rows"]
    }
    for row in current["extra"]["rows"]:
        base = baseline_rows.get(row["n_pes"])
        if base is None:
            continue
        for metric in ("wire_messages", "wire_bytes"):
            now = row["collective"][metric]
            then = base["collective"][metric]
            if now > then:
                failures.append(
                    f"p={row['n_pes']}: collective {metric} grew "
                    f"{then} -> {now}"
                )
    return failures


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = load(argv[1])
    current = load(argv[2])
    failures = check_current(current)
    failures += check_against_baseline(baseline, current)
    if failures:
        print("collectives regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("collectives regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
