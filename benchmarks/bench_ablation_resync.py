"""Ablation — resynchronization on/off across PE counts.

Quantifies §4.1 beyond the two figure cases: for 2..4 error PEs, how
many synchronization (acknowledgment) messages per iteration does
resynchronization eliminate, and what does that do to wire traffic?
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.apps.lpc import build_parallel_error_graph
from repro.spi import SpiConfig, SpiSystem

ITERATIONS = 4
PE_COUNTS = (2, 3, 4)


def run_pair(speech_frames_factory, n_units):
    frames = speech_frames_factory(256)
    system = build_parallel_error_graph(frames, order=8, n_units=n_units)
    raw = SpiSystem.compile(
        system.graph,
        system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=False),
    ).run(iterations=ITERATIONS)
    optimised = SpiSystem.compile(
        system.graph,
        system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=True),
    ).run(iterations=ITERATIONS)
    return raw, optimised


@pytest.fixture(scope="module")
def sweep(speech_frames_factory):
    return {
        n: run_pair(speech_frames_factory, n) for n in PE_COUNTS
    }


def test_resync_ablation_report(sweep):
    rows = []
    for n, (raw, optimised) in sweep.items():
        rows.append(
            [
                str(n),
                str(raw.ack_messages),
                str(optimised.ack_messages),
                str(raw.wire_bytes - optimised.wire_bytes),
                f"{raw.execution_time_us:.2f}",
                f"{optimised.execution_time_us:.2f}",
            ]
        )
    text = render_table(
        [
            "error PEs",
            "acks (raw)",
            "acks (resync)",
            "wire bytes saved",
            "time us (raw)",
            "time us (resync)",
        ],
        rows,
    )
    emit("Ablation: resynchronization across PE counts", text)
    save_result("ablation_resync.txt", text)


def test_savings_scale_with_pe_count(sweep):
    """More PEs, more channels, more acks removed: savings grow with n."""
    saved = {
        n: raw.ack_messages - optimised.ack_messages
        for n, (raw, optimised) in sweep.items()
    }
    assert saved[2] < saved[3] < saved[4]
    for n, (raw, optimised) in sweep.items():
        assert raw.ack_messages == 3 * n * ITERATIONS
        assert optimised.ack_messages == 0


def test_resync_never_hurts_time(sweep):
    for raw, optimised in sweep.values():
        assert optimised.execution_time_us <= raw.execution_time_us * 1.01


def test_benchmark_resync_4pe(benchmark, speech_frames_factory):
    benchmark(lambda: run_pair(speech_frames_factory, 4))
