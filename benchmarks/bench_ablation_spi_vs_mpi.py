"""Ablation — SPI against the generic MPI-like layer (§1's motivation).

Same applications, same mappings, same simulated platform; only the
communication layer changes.  Reports execution time, overhead bytes on
the wire, and library fabric cost for both paper applications.
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.apps.lpc import build_parallel_error_graph
from repro.apps.particle_filter import build_particle_filter_graph
from repro.mpi import MpiSystem
from repro.spi import SpiSystem

ITERATIONS = 5


def run_lpc(speech_frames_factory, layer):
    frames = speech_frames_factory(256)
    system = build_parallel_error_graph(frames, order=8, n_units=2)
    compiled = layer.compile(system.graph, system.partition)
    return compiled, compiled.run(iterations=ITERATIONS)


def run_pf(crack_problem, layer):
    model, _, observations = crack_problem
    system = build_particle_filter_graph(
        model, observations, n_particles=100, n_pes=2
    )
    compiled = layer.compile(system.graph, system.partition)
    return compiled, compiled.run(iterations=ITERATIONS)


@pytest.fixture(scope="module")
def results(speech_frames_factory, crack_problem):
    return {
        ("lpc", "spi"): run_lpc(speech_frames_factory, SpiSystem),
        ("lpc", "mpi"): run_lpc(speech_frames_factory, MpiSystem),
        ("pf", "spi"): run_pf(crack_problem, SpiSystem),
        ("pf", "mpi"): run_pf(crack_problem, MpiSystem),
    }


def test_spi_vs_mpi_report(results):
    rows = []
    for app, label in (("lpc", "LPC actor D (2 PE)"), ("pf", "PF (2 PE)")):
        _, spi = results[(app, "spi")]
        _, mpi = results[(app, "mpi")]
        rows.append(
            [
                label,
                f"{spi.execution_time_us:.2f}",
                f"{mpi.execution_time_us:.2f}",
                f"{mpi.execution_time_us / spi.execution_time_us:.2f}x",
                str(spi.overhead_bytes),
                str(mpi.overhead_bytes),
            ]
        )
    text = render_table(
        [
            "application",
            "SPI us",
            "MPI us",
            "SPI speedup",
            "SPI ovh B",
            "MPI ovh B",
        ],
        rows,
    )
    emit("Ablation: SPI vs MPI-like baseline", text)
    save_result("ablation_spi_vs_mpi.txt", text)

    for app in ("lpc", "pf"):
        _, spi = results[(app, "spi")]
        _, mpi = results[(app, "mpi")]
        assert spi.execution_time_us < mpi.execution_time_us
        assert spi.overhead_bytes < mpi.overhead_bytes
        assert spi.payload_bytes == mpi.payload_bytes  # fair comparison


def test_spi_library_smaller_than_mpi_engines(results):
    spi_system, _ = results[("lpc", "spi")]
    mpi_system, _ = results[("lpc", "mpi")]
    spi_cost = spi_system.spi_library_resources()
    mpi_cost = mpi_system.library_resources()
    assert spi_cost.slices < mpi_cost.slices
    assert spi_cost.lut4 < mpi_cost.lut4


def test_benchmark_spi_lpc(benchmark, speech_frames_factory):
    benchmark(lambda: run_lpc(speech_frames_factory, SpiSystem))


def test_benchmark_mpi_lpc(benchmark, speech_frames_factory):
    benchmark(lambda: run_lpc(speech_frames_factory, MpiSystem))
