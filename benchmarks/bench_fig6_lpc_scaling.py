"""Figure 6 — execution time of actor D vs sample size, n = 1..4 PEs.

Paper: "Figures 6 ... show the performance results obtained for actor D
of application 1 ... n represents the number of PEs used."  Expected
shape: time grows with sample size, every added PE lowers it, and the
gain is sub-linear because the per-PE I/O interface transfers serialize
on the shared interface processor.
"""

import time

import pytest

from conftest import QUICK, emit, save_bench_json, save_result
from repro.analysis import Figure, speedups
from repro.apps.lpc import build_parallel_error_graph
from repro.service import AnalysisCache, RunContext, run_operation
from repro.spi import SpiSystem

SAMPLE_SIZES = (128, 256) if QUICK else (128, 192, 256, 384, 512, 640)
PE_COUNTS = (1, 2, 3, 4)
ORDER = 8
ITERATIONS = 3 if QUICK else 5
CLOCK_MHZ = 100.0

#: sweep points share compile-time analyses through the service cache
_CACHE = AnalysisCache()


def measure(size: int, n_units: int) -> float:
    """Steady-state per-frame execution time of actor D, microseconds.

    Thin client of the ``bench.figure`` run operation (repro.service).
    """
    result = run_operation(
        "bench.figure",
        {
            "figure": "fig6",
            "size": size,
            "n": n_units,
            "iterations": ITERATIONS,
        },
        RunContext(cache=_CACHE),
    )
    return result.payload["iteration_period_cycles"] / CLOCK_MHZ


@pytest.fixture(scope="module")
def sweep():
    return {
        (size, n): measure(size, n)
        for size in SAMPLE_SIZES
        for n in PE_COUNTS
    }


def test_fig6_report(sweep):
    figure = Figure(
        title="Figure 6: performance results for actor D of application 1",
        x_label="Sample size",
        y_label="Execution time (microseconds), 100 MHz clock",
    )
    for n in PE_COUNTS:
        series = figure.add_series(f"n={n}")
        for size in SAMPLE_SIZES:
            series.add(size, sweep[(size, n)])
    text = figure.render()
    emit("Figure 6 (reproduced)", text)
    save_result("fig6_lpc_scaling.csv", figure.to_csv())
    save_result("fig6_lpc_scaling.txt", text)

    # Shape assertions: monotone in size, monotone in PEs, sub-linear.
    for n in PE_COUNTS:
        series = [sweep[(s, n)] for s in SAMPLE_SIZES]
        assert series == sorted(series)
    for size in SAMPLE_SIZES:
        by_pe = [sweep[(size, n)] for n in PE_COUNTS]
        assert by_pe == sorted(by_pe, reverse=True)
        gains = speedups(by_pe)
        assert gains[-1] < 4.0


def test_fig6_bench_export(speech_frames_factory):
    """Emit BENCH_fig6_lpc_scaling.json: the 4-PE largest-size point,
    fully instrumented (channel stats ride along for the CI artifact)."""
    frames = speech_frames_factory(SAMPLE_SIZES[-1])
    system = build_parallel_error_graph(frames, order=ORDER, n_units=4)
    compiled = SpiSystem.compile(system.graph, system.partition)
    start = time.perf_counter()
    result = compiled.run(iterations=ITERATIONS, metrics=True)
    wall = time.perf_counter() - start
    path = save_bench_json(
        "fig6_lpc_scaling",
        makespan_cycles=result.cycles,
        iteration_period_cycles=result.iteration_period_cycles,
        wall_seconds=wall,
        extra={
            "sample_size": SAMPLE_SIZES[-1],
            "n_units": 4,
            "channels": result.metrics["channels"],
            "wire_byte_split": result.metrics["wire_byte_split"],
        },
    )
    assert path.exists()


def test_fig6_speedup_grows_with_size(sweep):
    small = sweep[(SAMPLE_SIZES[0], 1)] / sweep[(SAMPLE_SIZES[0], 4)]
    large = sweep[(SAMPLE_SIZES[-1], 1)] / sweep[(SAMPLE_SIZES[-1], 4)]
    assert large > small


def test_fig6_benchmark_4pe_512(benchmark):
    """pytest-benchmark unit: compile+simulate the 4-PE, 512-sample point."""
    benchmark(measure, 512, 4)
