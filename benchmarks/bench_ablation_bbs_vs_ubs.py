"""Ablation — BBS against UBS on the same application.

BBS needs no reverse-direction traffic (the bound is static); UBS pays
one acknowledgment per message unless resynchronization proves it
redundant.  Three configurations over the 2-PE LPC error system:

* auto (BBS chosen, the paper's preferred path),
* forced UBS without resynchronization (worst case),
* forced UBS with resynchronization (acks optimised away).
"""

import time

import pytest

from conftest import QUICK, emit, save_bench_json, save_result
from repro.analysis import render_table
from repro.apps.lpc import build_parallel_error_graph
from repro.spi import Protocol, SpiConfig, SpiSystem

ITERATIONS = 3 if QUICK else 6


def run_variant(speech_frames_factory, policy, resync):
    frames = speech_frames_factory(256)
    system = build_parallel_error_graph(frames, order=8, n_units=2)
    compiled = SpiSystem.compile(
        system.graph,
        system.partition,
        SpiConfig(protocol_policy=policy, resynchronize=resync),
    )
    return compiled, compiled.run(iterations=ITERATIONS)


@pytest.fixture(scope="module")
def variants(speech_frames_factory):
    return {
        "bbs": run_variant(speech_frames_factory, "auto", True),
        "ubs_raw": run_variant(speech_frames_factory, "always_ubs", False),
        "ubs_resync": run_variant(speech_frames_factory, "always_ubs", True),
    }


def test_bbs_vs_ubs_report(variants):
    rows = []
    labels = {
        "bbs": "BBS (auto)",
        "ubs_raw": "UBS, no resync",
        "ubs_resync": "UBS + resync",
    }
    for key, (system, result) in variants.items():
        protocols = {p.protocol for p in system.channel_plans.values()}
        rows.append(
            [
                labels[key],
                "/".join(sorted(protocols)),
                str(result.ack_messages),
                str(result.wire_bytes),
                f"{result.execution_time_us:.2f}",
            ]
        )
    text = render_table(
        ["configuration", "protocols", "acks", "wire bytes", "time us"],
        rows,
    )
    emit("Ablation: BBS vs UBS", text)
    save_result("ablation_bbs_vs_ubs.txt", text)


def test_bbs_vs_ubs_bench_export(speech_frames_factory):
    """Emit BENCH_ablation_bbs_vs_ubs.json: the auto-BBS configuration."""
    frames = speech_frames_factory(256)
    system = build_parallel_error_graph(frames, order=8, n_units=2)
    compiled = SpiSystem.compile(system.graph, system.partition)
    start = time.perf_counter()
    result = compiled.run(iterations=ITERATIONS, metrics=True)
    wall = time.perf_counter() - start
    path = save_bench_json(
        "ablation_bbs_vs_ubs",
        makespan_cycles=result.cycles,
        iteration_period_cycles=result.iteration_period_cycles,
        wall_seconds=wall,
        extra={
            "configuration": "auto (BBS)",
            "channels": result.metrics["channels"],
            "wire_byte_split": result.metrics["wire_byte_split"],
        },
    )
    assert path.exists()


def test_auto_selects_bbs(variants):
    system, result = variants["bbs"]
    assert all(
        p.protocol == Protocol.BBS for p in system.channel_plans.values()
    )
    assert result.ack_messages == 0


def test_raw_ubs_pays_one_ack_per_message(variants):
    _, result = variants["ubs_raw"]
    assert result.ack_messages == result.data_messages


def test_resync_recovers_bbs_traffic_profile(variants):
    _, bbs = variants["bbs"]
    _, optimised = variants["ubs_resync"]
    assert optimised.ack_messages == 0
    assert optimised.wire_bytes == bbs.wire_bytes


def test_bbs_never_slower(variants):
    _, bbs = variants["bbs"]
    _, raw = variants["ubs_raw"]
    assert bbs.execution_time_us <= raw.execution_time_us * 1.01


def test_benchmark_bbs(benchmark, speech_frames_factory):
    benchmark(lambda: run_variant(speech_frames_factory, "auto", True))


def test_benchmark_ubs(benchmark, speech_frames_factory):
    benchmark(
        lambda: run_variant(speech_frames_factory, "always_ubs", False)
    )
