"""Ablation — delay-insertion pipelining on mapped chains.

Not a paper figure, but a design-space point DESIGN.md calls out: the
self-timed framework turns inserted delay tokens directly into
iteration overlap, and resynchronization then collapses the UBS
acknowledgments into a single added synchronization edge.  Measured on
heavy processing chains of 3..5 stages.
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.dataflow import DataflowGraph
from repro.mapping import Partition, auto_pipeline
from repro.spi import SpiSystem

STAGE_CYCLES = (400, 500, 300, 450, 350)


def chain(n_stages: int) -> DataflowGraph:
    graph = DataflowGraph(f"chain{n_stages}")
    actors = [
        graph.actor(f"s{i}", cycles=STAGE_CYCLES[i]) for i in range(n_stages)
    ]
    for left, right in zip(actors, actors[1:]):
        out = left.add_output(f"to_{right.name}")
        inp = right.add_input(f"from_{left.name}")
        graph.connect(out, inp)
    return graph


def run_pair(n_stages: int):
    flat = chain(n_stages)
    single = SpiSystem.compile(
        flat, Partition.single_processor(flat)
    ).run(iterations=10)

    result = auto_pipeline(chain(n_stages), stages=n_stages)
    partition = Partition.manual(result.graph, result.stages)
    system = SpiSystem.compile(result.graph, partition)
    piped = system.run(iterations=20)
    return single, piped, system


@pytest.fixture(scope="module")
def sweep():
    return {n: run_pair(n) for n in (3, 4, 5)}


def test_pipelining_report(sweep):
    rows = []
    for n, (single, piped, system) in sweep.items():
        mcm = system.estimated_iteration_period_cycles()
        rows.append(
            [
                str(n),
                f"{single.iteration_period_cycles:.0f}",
                f"{piped.iteration_period_cycles:.0f}",
                f"{mcm:.0f}",
                f"{single.iteration_period_cycles / piped.iteration_period_cycles:.2f}x",
                f"{piped.sync_messages / piped.iterations:.1f}",
            ]
        )
    text = render_table(
        [
            "stages/PEs",
            "1-PE cycles/iter",
            "pipelined cycles/iter",
            "MCM bound",
            "speedup",
            "sync msgs/iter",
        ],
        rows,
    )
    emit("Ablation: delay-insertion pipelining", text)
    save_result("ablation_pipelining.txt", text)


def test_period_reaches_mcm(sweep):
    for n, (_, piped, system) in sweep.items():
        mcm = system.estimated_iteration_period_cycles()
        assert piped.iteration_period_cycles == pytest.approx(mcm, rel=0.03)


def test_speedup_scales_with_stage_count(sweep):
    gains = {
        n: single.iteration_period_cycles / piped.iteration_period_cycles
        for n, (single, piped, _) in sweep.items()
    }
    assert gains[3] > 2.0
    assert gains[5] > gains[3]


def test_no_acknowledgment_traffic(sweep):
    for _, piped, _ in sweep.values():
        assert piped.ack_messages == 0  # resync replaced the windows


def test_benchmark_pipeline_5_stages(benchmark):
    benchmark(lambda: run_pair(5))
