"""Figure 1 — the VTS conversion example and its buffer bounds.

The paper's figure 1 shows an SDF edge with dynamic production rate
(bound 10) and dynamic consumption rate (bound 8) converted into a
static rate-1 edge carrying variable-size packed tokens.  This bench
reproduces the conversion, reports the eq. 1 / eq. 2 bounds, and checks
them against the occupancy actually observed during execution.
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.dataflow import DataflowGraph, DynamicRate, vts_convert
from repro.mapping import Partition
from repro.spi import SpiSystem

PRODUCER_BOUND = 10
CONSUMER_BOUND = 8
RAW_BYTES = 2


def build_fig1_graph():
    """A -> B with rates varying at run time (cycling 1..bound)."""
    graph = DataflowGraph("fig1")

    def produce(k, inputs):
        return {"o": list(range(k % PRODUCER_BOUND + 1))}

    a = graph.actor("A", kernel=produce, cycles=4)
    b = graph.actor("B", cycles=4)
    a.add_output("o", rate=DynamicRate(PRODUCER_BOUND), token_bytes=RAW_BYTES)
    b.add_input("i", rate=DynamicRate(CONSUMER_BOUND), token_bytes=RAW_BYTES)
    graph.connect((a, "o"), (b, "i"))
    return graph


@pytest.fixture(scope="module")
def conversion():
    return vts_convert(build_fig1_graph())


def test_fig1_conversion_report(conversion):
    edge = conversion.graph.edges[0]
    info = conversion.edge_info[edge.name]
    rows = [
        ["production rate (before)", f"dynamic, <= {PRODUCER_BOUND}"],
        ["consumption rate (before)", f"dynamic, <= {CONSUMER_BOUND}"],
        ["production rate (after)", str(edge.source.rate)],
        ["consumption rate (after)", str(edge.sink.rate)],
        ["b_max(e)  [bytes/packed token]", str(info.b_max_bytes)],
        ["c_sdf(e)  [packed tokens]", str(info.c_sdf)],
        ["c(e) = c_sdf * b_max  [eq. 1]", str(info.c_bytes)],
        [
            "B(e)  [eq. 2]",
            str(conversion.ipc_buffer_bound_bytes(edge) or "unbounded (UBS)"),
        ],
    ]
    text = render_table(["quantity", "value"], rows)
    emit("Figure 1 (VTS conversion, reproduced)", text)
    save_result("fig1_vts_conversion.txt", text)

    assert edge.source.rate == 1
    assert edge.sink.rate == 1
    assert info.b_max_bytes == PRODUCER_BOUND * RAW_BYTES


def test_fig1_bound_is_sound_at_runtime(conversion):
    """Observed channel occupancy never exceeds the planned byte bound."""
    graph = build_fig1_graph()
    partition = Partition(graph, 2, {"A": 0, "B": 1})
    system = SpiSystem.compile(graph, partition)
    result = system.run(iterations=PRODUCER_BOUND * 3)
    plan = next(iter(system.channel_plans.values()))
    high = next(iter(result.buffer_high_water.values()))
    assert high <= (plan.capacity_messages + 1) * plan.message_payload_bytes


def test_fig1_benchmark_conversion(benchmark):
    """pytest-benchmark unit: the VTS conversion itself."""
    benchmark(lambda: vts_convert(build_fig1_graph()))
