"""Collective connections — PF resampling exchange, p2p vs broadcast.

The particle filter's S1 weight-sum exchange is an all-to-all of
identical payloads: with point-to-point edges each PE sends p-1 copies;
with first-class broadcast connections the payload goes on the shared
bus once per firing and fans out at the receivers.  This bench sweeps
the PE count and reports, per side, the transfers actually on the wire
and the wire bytes after payload sharing — the message-count and
wire-byte reduction the paper's framing predicts.

``BENCH_collectives.json`` carries one row per PE count;
``check_collectives_regression.py`` gates CI on the p >= 4 win and on
the reduction ratio floor.
"""

import time

import pytest

from conftest import QUICK, emit, save_bench_json, save_result
from repro.analysis import render_table
from repro.apps.particle_filter import build_particle_filter_graph
from repro.spi import SpiConfig, SpiSystem

PE_COUNTS = (2, 4) if QUICK else (2, 4, 6)
N_PARTICLES = 72 if QUICK else 120  # divisible by every PE count
ITERATIONS = 4 if QUICK else 6
TRANSPORT = "shared_bus"


def wire_messages(result) -> int:
    """Transfers actually on the wire: a collective transfer counts
    once, not once per delivered consumer copy."""
    return (
        result.data_messages
        - result.fan_out_deliveries
        + result.collective_messages
    )


def measure(n_pes: int, collectives: bool, crack_problem) -> dict:
    model, _, observations = crack_problem
    system = build_particle_filter_graph(
        model, observations, n_particles=N_PARTICLES, n_pes=n_pes,
        collectives=collectives,
    )
    compiled = SpiSystem.compile(
        system.graph, system.partition, SpiConfig(transport=TRANSPORT)
    )
    result = compiled.run(iterations=ITERATIONS, metrics=True)
    return {
        "cycles": result.cycles,
        "iteration_period_cycles": result.iteration_period_cycles,
        "data_messages": result.data_messages,
        "collective_messages": result.collective_messages,
        "fan_out_deliveries": result.fan_out_deliveries,
        "wire_messages": wire_messages(result),
        "wire_bytes": result.wire_bytes - result.wire_bytes_saved,
        "wire_bytes_saved": result.wire_bytes_saved,
    }


@pytest.fixture(scope="module")
def sweep(crack_problem):
    return {
        (n, collectives): measure(n, collectives, crack_problem)
        for n in PE_COUNTS
        for collectives in (False, True)
    }


def test_collectives_report(sweep):
    rows = []
    for n in PE_COUNTS:
        p2p, coll = sweep[(n, False)], sweep[(n, True)]
        rows.append(
            [
                str(n),
                str(p2p["wire_messages"]),
                str(coll["wire_messages"]),
                str(p2p["wire_bytes"]),
                str(coll["wire_bytes"]),
                f"{p2p['wire_messages'] / coll['wire_messages']:.2f}x"
                if coll["wire_messages"]
                else "-",
            ]
        )
    text = render_table(
        [
            "PEs",
            "p2p msgs",
            "coll msgs",
            "p2p bytes",
            "coll bytes",
            "msg reduction",
        ],
        rows,
    )
    emit("Collective vs p2p fan-out (PF weight exchange)", text)
    save_result("collectives_pf.txt", text)


def test_degenerate_two_pe_point_identical(sweep):
    """At 2 PEs every broadcast has one consumer: bit-identical runs."""
    p2p, coll = sweep[(2, False)], sweep[(2, True)]
    assert coll == p2p


def test_collective_win_at_four_plus_pes(sweep):
    """The acceptance criterion: strictly fewer wire messages AND wire
    bytes at every p >= 4."""
    for n in PE_COUNTS:
        if n < 4:
            continue
        p2p, coll = sweep[(n, False)], sweep[(n, True)]
        assert coll["collective_messages"] > 0
        assert coll["wire_messages"] < p2p["wire_messages"]
        assert coll["wire_bytes"] < p2p["wire_bytes"]


def test_collectives_bench_export(sweep):
    """Emit BENCH_collectives.json for the CI regression gate."""
    largest = PE_COUNTS[-1]
    wall_start = time.perf_counter()
    rows = [
        {
            "n_pes": n,
            "p2p": sweep[(n, False)],
            "collective": sweep[(n, True)],
        }
        for n in PE_COUNTS
    ]
    wall = time.perf_counter() - wall_start
    path = save_bench_json(
        "collectives",
        makespan_cycles=sweep[(largest, True)]["cycles"],
        iteration_period_cycles=(
            sweep[(largest, True)]["iteration_period_cycles"]
        ),
        wall_seconds=wall,
        extra={
            "transport": TRANSPORT,
            "n_particles": N_PARTICLES,
            "iterations": ITERATIONS,
            "pe_counts": list(PE_COUNTS),
            "rows": rows,
        },
    )
    assert path.exists()


def test_collectives_benchmark_largest(benchmark, crack_problem):
    """pytest-benchmark unit: the largest-p collective build."""
    benchmark(measure, PE_COUNTS[-1], True, crack_problem)
