"""Figure 7 — particle filter execution time vs particle count, n = 1, 2.

Paper: "for this system [the number of particles] varies from 50 to 300"
and only 2 PEs fit the device.  Expected shape: time grows with N, the
2-PE version wins everywhere, speedup < 2 and improving with N (the
resampling exchange amortises).
"""

import time

import pytest

from conftest import QUICK, emit, save_bench_json, save_result
from repro.analysis import Figure
from repro.apps.particle_filter import build_particle_filter_graph
from repro.service import AnalysisCache, RunContext, run_operation
from repro.spi import SpiSystem

PARTICLE_COUNTS = (50, 150, 300) if QUICK else (50, 100, 150, 200, 250, 300)
PE_COUNTS = (1, 2)
ITERATIONS = 4 if QUICK else 6
CLOCK_MHZ = 100.0

#: sweep points share compile-time analyses through the service cache
_CACHE = AnalysisCache()


def measure(n_particles: int, n_pes: int) -> float:
    """Steady-state per-iteration filter time, microseconds.

    Thin client of the ``bench.figure`` run operation (repro.service).
    """
    result = run_operation(
        "bench.figure",
        {
            "figure": "fig7",
            "size": n_particles,
            "n": n_pes,
            "iterations": ITERATIONS,
        },
        RunContext(cache=_CACHE),
    )
    return result.payload["iteration_period_cycles"] / CLOCK_MHZ


@pytest.fixture(scope="module")
def sweep():
    return {
        (particles, n): measure(particles, n)
        for particles in PARTICLE_COUNTS
        for n in PE_COUNTS
    }


def test_fig7_report(sweep):
    figure = Figure(
        title="Figure 7: performance results for application 2",
        x_label="No. of particles",
        y_label="Execution time (microseconds), 100 MHz clock",
    )
    for n in PE_COUNTS:
        series = figure.add_series(f"n={n}")
        for particles in PARTICLE_COUNTS:
            series.add(particles, sweep[(particles, n)])
    text = figure.render()
    emit("Figure 7 (reproduced)", text)
    save_result("fig7_pf_scaling.csv", figure.to_csv())
    save_result("fig7_pf_scaling.txt", text)

    for n in PE_COUNTS:
        series = [sweep[(p, n)] for p in PARTICLE_COUNTS]
        assert series == sorted(series)
    for particles in PARTICLE_COUNTS:
        assert sweep[(particles, 2)] < sweep[(particles, 1)]


def test_fig7_bench_export(crack_problem):
    """Emit BENCH_fig7_pf_scaling.json: the 2-PE largest-N point."""
    model, _, observations = crack_problem
    system = build_particle_filter_graph(
        model, observations, n_particles=PARTICLE_COUNTS[-1], n_pes=2
    )
    compiled = SpiSystem.compile(system.graph, system.partition)
    start = time.perf_counter()
    result = compiled.run(iterations=ITERATIONS, metrics=True)
    wall = time.perf_counter() - start
    path = save_bench_json(
        "fig7_pf_scaling",
        makespan_cycles=result.cycles,
        iteration_period_cycles=result.iteration_period_cycles,
        wall_seconds=wall,
        extra={
            "n_particles": PARTICLE_COUNTS[-1],
            "n_pes": 2,
            "channels": result.metrics["channels"],
            "wire_byte_split": result.metrics["wire_byte_split"],
        },
    )
    assert path.exists()


def test_fig7_speedup_below_two_and_growing(sweep):
    gains = [sweep[(p, 1)] / sweep[(p, 2)] for p in PARTICLE_COUNTS]
    assert all(1.0 < g < 2.0 for g in gains)
    assert gains[-1] > gains[0]


def test_fig7_benchmark_2pe_300(benchmark):
    """pytest-benchmark unit: the 2-PE, 300-particle point."""
    benchmark(measure, 300, 2)
