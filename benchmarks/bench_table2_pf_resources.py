"""Table 2 — FPGA resources, 2-PE particle filter (app 2).

Paper's facts to preserve: the PF datapath is so heavy that "only 2 PEs
could be accommodated" on the device; the SPI library's fabric share is
tiny (well below the LPC case) with zero DSP48s, while the full system
is DSP-heavy.
"""

import pytest

from conftest import emit, save_result
from repro.apps.particle_filter import build_particle_filter_graph
from repro.platform import VIRTEX4_SX35
from repro.spi import SpiSystem

N_PARTICLES = 200


def compile_system(crack_problem, n_pes=2, particles=N_PARTICLES):
    model, _, observations = crack_problem
    system = build_particle_filter_graph(
        model, observations, n_particles=particles, n_pes=n_pes
    )
    return SpiSystem.compile(system.graph, system.partition)


@pytest.fixture(scope="module")
def report(crack_problem):
    spi = compile_system(crack_problem)
    return spi.fpga_report(
        device=VIRTEX4_SX35,
        title=(
            "Table 2: FPGA resource requirements for 2 PE implementation "
            "of application 2"
        ),
    )


def test_table2_report(report):
    text = report.render()
    emit("Table 2 (reproduced)", text)
    save_result("table2_pf_resources.txt", text)


def test_table2_spi_fabric_share_tiny(report):
    relative = report.spi_relative_percent()
    assert relative["slices"] < 5.0
    assert relative["slice_ffs"] < 5.0
    assert relative["lut4"] < 5.0


def test_table2_spi_uses_no_dsp48(report):
    assert report.spi_library.dsp48 == 0


def test_table2_full_system_is_dsp_heavy(report):
    assert report.device_percent()["dsp48"] > 15.0


def test_table2_two_pes_fit_three_do_not(crack_problem):
    """The paper's capacity observation, reproduced structurally."""
    two = compile_system(crack_problem, n_pes=2, particles=200)
    assert VIRTEX4_SX35.fits(
        two.fpga_report(device=VIRTEX4_SX35).full_system
    )
    three = compile_system(crack_problem, n_pes=3, particles=201)
    assert not VIRTEX4_SX35.fits(
        three.fpga_report(device=VIRTEX4_SX35).full_system
    )


def test_table2_benchmark_compile(benchmark, crack_problem):
    """pytest-benchmark unit: full SPI compilation of the 2-PE filter."""
    benchmark(compile_system, crack_problem)
