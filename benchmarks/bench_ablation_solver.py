"""Ablation — actor C's solver: LU (the paper's choice) vs Levinson.

The paper's actor C finds predictor coefficients by LU decomposition —
a general O(M^3) solver on a system that is Toeplitz, where the
Levinson–Durbin recursion is O(M^2).  Both yield the same predictor;
this bench quantifies the cycle cost of the general-solver choice as
the model order grows, and its effect on the whole ADC pipeline's
iteration period.
"""

import numpy as np
import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.apps.lpc.levinson import levinson_cycles, levinson_durbin
from repro.apps.lpc.linalg import lu_cycles
from repro.apps.lpc.lpc import autocorr_cycles, autocorrelation, lpc_coefficients
from repro.apps.lpc.signal_gen import SpeechLikeSource

ORDERS = (4, 8, 16, 32)
FRAME = 512


@pytest.fixture(scope="module")
def frame():
    return SpeechLikeSource(seed=12).samples(FRAME)


def test_solver_report(frame):
    rows = []
    for order in ORDERS:
        lu = lu_cycles(order)
        lev = levinson_cycles(order)
        shared = autocorr_cycles(FRAME, order)
        rows.append(
            [
                str(order),
                str(lu),
                str(lev),
                f"{lu / lev:.1f}x",
                f"{(shared + lu) / (shared + lev):.2f}x",
            ]
        )
    text = render_table(
        [
            "model order M",
            "LU cycles",
            "Levinson cycles",
            "solver speedup",
            "whole actor C speedup",
        ],
        rows,
    )
    emit("Ablation: actor C solver (LU vs Levinson-Durbin)", text)
    save_result("ablation_solver.txt", text)


def test_same_predictor(frame):
    for order in ORDERS:
        via_lu = lpc_coefficients(frame, order)
        via_lev = levinson_durbin(
            autocorrelation(frame, order), order
        ).coefficients
        assert np.allclose(via_lu, via_lev, atol=1e-5)


def test_levinson_always_cheaper(frame):
    for order in ORDERS:
        assert levinson_cycles(order) < lu_cycles(order)


def test_actor_c_dominated_by_autocorrelation_at_low_order(frame):
    """Context for the paper's choice: at M=8 with 512-sample frames,
    the autocorrelation dominates actor C either way — the LU choice
    costs little in the paper's own operating point."""
    order = 8
    shared = autocorr_cycles(FRAME, order)
    assert shared > lu_cycles(order)


def test_benchmark_levinson(benchmark, frame):
    r = autocorrelation(frame, 16)
    benchmark(lambda: levinson_durbin(r, 16))


def test_benchmark_lu_solver(benchmark, frame):
    benchmark(lambda: lpc_coefficients(frame, 16))
