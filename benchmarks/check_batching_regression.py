#!/usr/bin/env python
"""Gate the batching benchmark against its committed baseline.

Usage::

    python benchmarks/check_batching_regression.py BASELINE.json CURRENT.json

Gates, all applied to the current document:

* **fig6 batched win** — the best batched configuration must run at
  least ``SPEEDUP_FLOOR`` (1.5x) faster than batch=1 on the LPC
  parallel-error pipeline in full mode (the ISSUE's acceptance
  criterion); quick sweeps fewer blocking factors, so the floor relaxes
  to ``QUICK_SPEEDUP_FLOOR``.
* **equal-budget hetero win** — the heterogeneous platform (gpp +
  accelerators, batched) must beat the homogeneous all-gpp platform of
  the same resource budget in simulated cycles.
* **fig7 clamp** — the particle filter's feedback loop admits no
  blocking factor: the effective batch must be exactly 1 and no batched
  dispatch may be recorded.
* **vectorized-kernel wall-clock win** (full mode only — quick CI
  runners are too noisy for wall-clock gates) — every vectorized host
  kernel must beat its per-element reference loop.
* **same-mode comparison** (same ``quick`` flag only) — simulated
  cycles per (n_units, batch) sweep point must not exceed the baseline;
  the cycle counts are deterministic, so any growth is a scheduling or
  cost-model regression, not noise.

Exit status 0 = pass, 1 = regression, 2 = unusable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: minimum best-batched/batch=1 cycle ratio on fig6 (full mode)
SPEEDUP_FLOOR = 1.5
#: relaxed floor for quick-mode documents (fewer blocking factors)
QUICK_SPEEDUP_FLOOR = 1.2


def load(path: str) -> dict:
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}")
        raise SystemExit(2)
    if document.get("name") != "batching" or "rows" not in document.get(
        "extra", {}
    ):
        print(f"{path} is not a batching bench document")
        raise SystemExit(2)
    return document


def check_current(current: dict) -> list:
    failures = []
    extra = current["extra"]
    quick = current.get("quick", False)

    floor = QUICK_SPEEDUP_FLOOR if quick else SPEEDUP_FLOOR
    best = extra["fig6_best_cycles"]
    base = extra["fig6_batch1_cycles"]
    if best <= 0:
        failures.append("fig6 best batched run reported no cycles")
    elif base / best < floor:
        failures.append(
            f"fig6 batched speedup {base / best:.2f}x below the "
            f"{floor}x floor (batch=1 {base}, best {best})"
        )

    hetero = extra["hetero_vs_homo"]
    if hetero["hetero_cycles"] >= hetero["homo_cycles"]:
        failures.append(
            f"equal-budget ablation: heterogeneous "
            f"{hetero['hetero_cycles']} cycles not below homogeneous "
            f"{hetero['homo_cycles']} (budget {hetero['budget']})"
        )

    fig7 = extra["fig7"]
    if fig7["effective_batch"] != 1 or fig7["batch_dispatches"] != 0:
        failures.append(
            f"fig7 feedback loop must clamp to batch 1, got effective "
            f"batch {fig7['effective_batch']} with "
            f"{fig7['batch_dispatches']} batched dispatch(es)"
        )

    if not quick:
        for kernel in extra["kernels"]:
            if kernel["speedup"] <= 1.0:
                failures.append(
                    f"vectorized kernel {kernel['name']} not faster than "
                    f"its reference loop ({kernel['speedup']:.2f}x)"
                )
    return failures


def check_against_baseline(baseline: dict, current: dict) -> list:
    if baseline.get("quick") != current.get("quick"):
        print(
            "baseline/current were produced in different modes "
            "(quick vs full); applying the current-document gates only"
        )
        return []
    failures = []
    baseline_rows = {
        (row["n_units"], row["requested_batch"]): row
        for row in baseline["extra"]["rows"]
    }
    for row in current["extra"]["rows"]:
        base = baseline_rows.get((row["n_units"], row["requested_batch"]))
        if base is None:
            continue
        if row["cycles"] > base["cycles"]:
            failures.append(
                f"n_units={row['n_units']} batch={row['requested_batch']}: "
                f"cycles grew {base['cycles']} -> {row['cycles']}"
            )
    return failures


def main(argv: list) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    baseline = load(argv[1])
    current = load(argv[2])
    failures = check_current(current)
    failures += check_against_baseline(baseline, current)
    if failures:
        print("batching regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("batching regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
