#!/usr/bin/env python
"""Gate the kernel benchmark against its committed baseline.

Usage::

    python benchmarks/check_kernel_regression.py BASELINE.json CURRENT.json

Gates, strongest applicable wins:

* **contended floor** (always) — the contended workload's
  targeted/broadcast events-per-second ratio must stay >= 2x.  The
  ratio is machine-independent (both disciplines run on the same box)
  and holds in both quick and full mode, so it is the one gate a quick
  CI run can apply against the committed full-mode baseline.
* **steady-state floor** (always, on the current document) — the best
  steady-state auto-vs-off speedup across the fig6/fig7 sweep must
  stay >= 5x in full mode (2x quick), auto must never be meaningfully
  slower than off on any application, and the document must report a
  real (> 0) iteration period for its periodic workload.
* **per-workload comparison** (same-mode runs only) — when baseline and
  current were produced with the same ``quick`` flag, neither the
  speedup ratio nor the absolute targeted events/sec of any workload
  may regress by more than the tolerance.  Quick-vs-full pairs skip
  this (the win grows with workload size, so the numbers are
  incomparable) and rely on the floors.

Exit status 0 = pass, 1 = regression, 2 = unusable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: fraction of the baseline a metric may lose before the gate fails
TOLERANCE = 0.20

#: the contended workload must keep this absolute targeted/broadcast win
CONTENDED_FLOOR = 2.0

#: best fig6/fig7 steady-state auto-vs-off speedup floor, by mode
STEADY_FLOOR_FULL = 5.0
STEADY_FLOOR_QUICK = 2.0

#: auto may cost at most this factor over off on a workload where it
#: declines (tracker/eligibility overhead + timer noise on sub-100ms
#: walls; best-of-REPEATS keeps real runs well under it)
STEADY_SLOWDOWN_BOUND = 1.15


def check_steady_state(current: dict) -> list:
    """Current-document steady-state gates (no baseline needed)."""
    failures = []
    steady = current["extra"].get("steady_state")
    if not steady:
        failures.append(
            "extra.steady_state sweep missing from the current document"
        )
        return failures
    period = current.get("iteration_period_cycles", 0.0)
    if not period > 0:
        failures.append(
            f"iteration_period_cycles is {period!r}; the kernel bench "
            f"declares a periodic workload and must report fig6's "
            f"detected period"
        )
    floor = STEADY_FLOOR_QUICK if current.get("quick") else STEADY_FLOOR_FULL
    best = max(stats["speedup"] for stats in steady.values())
    if best < floor:
        failures.append(
            f"best steady-state auto/off speedup {best:.2f}x fell below "
            f"the {floor:.1f}x floor"
        )
    for fig, stats in sorted(steady.items()):
        off = stats["off_wall_seconds"]
        auto = stats["auto_wall_seconds"]
        if auto > off * STEADY_SLOWDOWN_BOUND:
            failures.append(
                f"{fig}: steady-state auto wall {auto:.3f}s exceeds "
                f"off wall {off:.3f}s by more than "
                f"{STEADY_SLOWDOWN_BOUND:.2f}x (auto must cost ~nothing "
                f"when it declines)"
            )
    return failures


def _load(path: str) -> dict:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != "repro.bench/1" or document.get("name") != "kernel":
        raise ValueError(f"{path}: not a kernel bench document")
    return document


def check(baseline: dict, current: dict) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    base_speedups = baseline["extra"]["speedups"]
    cur_speedups = current["extra"]["speedups"]

    contended = cur_speedups.get("contended", 0.0)
    if contended < CONTENDED_FLOOR:
        failures.append(
            f"contended targeted/broadcast speedup {contended:.2f}x fell "
            f"below the {CONTENDED_FLOOR:.1f}x floor"
        )
    failures.extend(check_steady_state(current))

    if baseline.get("quick") == current.get("quick"):
        for name, base in sorted(base_speedups.items()):
            cur = cur_speedups.get(name)
            if cur is None:
                failures.append(f"workload {name!r} missing from current run")
                continue
            if cur < base * (1.0 - TOLERANCE):
                failures.append(
                    f"{name}: speedup ratio regressed {base:.2f}x -> "
                    f"{cur:.2f}x (> {TOLERANCE:.0%} loss)"
                )
        base_workloads = baseline["extra"]["workloads"]
        cur_workloads = current["extra"]["workloads"]
        for key, base_stats in sorted(base_workloads.items()):
            if not key.endswith("/targeted"):
                continue
            cur_stats = cur_workloads.get(key)
            if cur_stats is None:
                failures.append(f"workload {key!r} missing from current run")
                continue
            base_eps = base_stats["events_per_second"]
            cur_eps = cur_stats["events_per_second"]
            if cur_eps < base_eps * (1.0 - TOLERANCE):
                failures.append(
                    f"{key}: events/sec regressed {base_eps:.0f} -> "
                    f"{cur_eps:.0f} (> {TOLERANCE:.0%} loss)"
                )
    else:
        print(
            "note: baseline/current quick flags differ; per-workload "
            "comparison skipped (contended floor still applies)"
        )
    return failures


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        baseline = _load(argv[1])
        current = _load(argv[2])
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}")
        return 2
    failures = check(baseline, current)
    if failures:
        print("kernel benchmark regression:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    steady = current["extra"].get("steady_state") or {}
    best_steady = max((s["speedup"] for s in steady.values()), default=0.0)
    print(
        "kernel benchmark OK: contended speedup "
        f"{current['extra']['speedups']['contended']:.2f}x, best "
        f"steady-state auto/off speedup {best_steady:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
