#!/usr/bin/env python
"""Gate the kernel benchmark against its committed baseline.

Usage::

    python benchmarks/check_kernel_regression.py BASELINE.json CURRENT.json

Two gates, strongest applicable wins:

* **contended floor** (always) — the contended workload's
  targeted/broadcast events-per-second ratio must stay >= 2x.  The
  ratio is machine-independent (both disciplines run on the same box)
  and holds in both quick and full mode, so it is the one gate a quick
  CI run can apply against the committed full-mode baseline.
* **per-workload comparison** (same-mode runs only) — when baseline and
  current were produced with the same ``quick`` flag, neither the
  speedup ratio nor the absolute targeted events/sec of any workload
  may regress by more than the tolerance.  Quick-vs-full pairs skip
  this (the win grows with workload size, so the numbers are
  incomparable) and rely on the floor.

Exit status 0 = pass, 1 = regression, 2 = unusable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: fraction of the baseline a metric may lose before the gate fails
TOLERANCE = 0.20

#: the contended workload must keep this absolute targeted/broadcast win
CONTENDED_FLOOR = 2.0


def _load(path: str) -> dict:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != "repro.bench/1" or document.get("name") != "kernel":
        raise ValueError(f"{path}: not a kernel bench document")
    return document


def check(baseline: dict, current: dict) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    base_speedups = baseline["extra"]["speedups"]
    cur_speedups = current["extra"]["speedups"]

    contended = cur_speedups.get("contended", 0.0)
    if contended < CONTENDED_FLOOR:
        failures.append(
            f"contended targeted/broadcast speedup {contended:.2f}x fell "
            f"below the {CONTENDED_FLOOR:.1f}x floor"
        )

    if baseline.get("quick") == current.get("quick"):
        for name, base in sorted(base_speedups.items()):
            cur = cur_speedups.get(name)
            if cur is None:
                failures.append(f"workload {name!r} missing from current run")
                continue
            if cur < base * (1.0 - TOLERANCE):
                failures.append(
                    f"{name}: speedup ratio regressed {base:.2f}x -> "
                    f"{cur:.2f}x (> {TOLERANCE:.0%} loss)"
                )
        base_workloads = baseline["extra"]["workloads"]
        cur_workloads = current["extra"]["workloads"]
        for key, base_stats in sorted(base_workloads.items()):
            if not key.endswith("/targeted"):
                continue
            cur_stats = cur_workloads.get(key)
            if cur_stats is None:
                failures.append(f"workload {key!r} missing from current run")
                continue
            base_eps = base_stats["events_per_second"]
            cur_eps = cur_stats["events_per_second"]
            if cur_eps < base_eps * (1.0 - TOLERANCE):
                failures.append(
                    f"{key}: events/sec regressed {base_eps:.0f} -> "
                    f"{cur_eps:.0f} (> {TOLERANCE:.0%} loss)"
                )
    else:
        print(
            "note: baseline/current quick flags differ; per-workload "
            "comparison skipped (contended floor still applies)"
        )
    return failures


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        baseline = _load(argv[1])
        current = _load(argv[2])
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}")
        return 2
    failures = check(baseline, current)
    if failures:
        print("kernel benchmark regression:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "kernel benchmark OK: contended speedup "
        f"{current['extra']['speedups']['contended']:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
