"""Figure 5 — resynchronization of the 2-PE particle filter (app 2).

The paper's figure 5 shows the 2-PE PF synchronization graph before and
after resynchronization.  Four channels cross the PEs per iteration (a
weight-sum and a particle exchange in each direction); under UBS each
carries an acknowledgment edge, and the filter's feedback structure
makes all of them redundant.
"""

import pytest

from conftest import emit, save_result
from repro.analysis import render_table
from repro.apps.particle_filter import build_particle_filter_graph
from repro.mapping import EdgeKind
from repro.spi import SpiConfig, SpiSystem

N_PARTICLES = 100
N_PES = 2


def compile_variants(crack_problem):
    model, _, observations = crack_problem
    system = build_particle_filter_graph(
        model, observations, n_particles=N_PARTICLES, n_pes=N_PES
    )
    before = SpiSystem.compile(
        system.graph,
        system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=False),
    )
    after = SpiSystem.compile(
        system.graph,
        system.partition,
        SpiConfig(protocol_policy="always_ubs", resynchronize=True),
    )
    return before, after


@pytest.fixture(scope="module")
def variants(crack_problem):
    return compile_variants(crack_problem)


def _ack_count(system):
    reference = (
        system.resync_result.graph
        if system.resync_result is not None
        else system.sync_graph
    )
    return len(reference.edges_of_kind(EdgeKind.ACK))


def test_fig5_report(variants):
    before, after = variants
    run_before = before.run(iterations=4)
    run_after = after.run(iterations=4)
    rows = [
        ["interprocessor channels", str(len(before.channel_plans)), "-"],
        [
            "ack (synchronization) edges",
            str(_ack_count(before)),
            str(_ack_count(after)),
        ],
        [
            "sync messages / 4 iterations (measured)",
            str(run_before.ack_messages),
            str(run_after.ack_messages),
        ],
        [
            "execution time (us, 4 iterations)",
            f"{run_before.execution_time_us:.2f}",
            f"{run_after.execution_time_us:.2f}",
        ],
    ]
    text = render_table(
        ["2-PE particle filter", "before resync", "after resync"], rows
    )
    emit("Figure 5 (resynchronization, reproduced)", text)
    save_result("fig5_resync_pf.txt", text)

    assert len(before.channel_plans) == 4
    assert _ack_count(before) == 4
    assert _ack_count(after) == 0
    assert run_after.ack_messages == 0
    # ack traffic is off the critical path in this mapping; removing it
    # must not hurt (equal within scheduling noise) and saves bandwidth
    assert run_after.execution_time_us <= run_before.execution_time_us * 1.01
    assert run_after.wire_bytes < run_before.wire_bytes


def test_fig5_two_messages_between_pes(variants):
    """Paper §5.3: 'There are two messages passed between the PEs' per
    direction — one SPI_static weight exchange, one SPI_dynamic particle
    exchange."""
    before, _ = variants
    static = [p for p in before.channel_plans.values() if not p.dynamic]
    dynamic = [p for p in before.channel_plans.values() if p.dynamic]
    assert len(static) == 2
    assert len(dynamic) == 2


def test_fig5_benchmark_resynchronize(benchmark, crack_problem):
    model, _, observations = crack_problem
    system = build_particle_filter_graph(
        model, observations, n_particles=N_PARTICLES, n_pes=N_PES
    )

    def compile_with_resync():
        return SpiSystem.compile(
            system.graph,
            system.partition,
            SpiConfig(protocol_policy="always_ubs", resynchronize=True),
        )

    benchmark(compile_with_resync)
