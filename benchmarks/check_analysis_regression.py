#!/usr/bin/env python
"""Gate the analysis benchmark against its committed baseline.

Usage::

    python benchmarks/check_analysis_regression.py BASELINE.json CURRENT.json

Gates, strongest applicable wins:

* **contended floor** (always) — the ``resync_heavy`` case (the
  contended analysis case: dense many-PE sync graphs where the legacy
  resynchronizer thrashes) must keep a >= 2x cold-analysis speedup.
  The ratio is machine-independent (both engines run in the same
  process on the same box), so it is the gate a quick CI run can apply
  against the committed full-mode baseline.
* **large-rep floor** (full-mode current only) — the
  ``large_repetition-vector`` fuzzer case must keep its >= 5x
  cold-analysis speedup (the ISSUE 10 acceptance bar).
* **verdict equivalence** (always) — every seed of the Howard-vs-Lawler
  campaign in the current document must agree; a single disagreement is
  a correctness regression, not a perf one.
* **per-case comparison** (same-mode runs only) — when baseline and
  current were produced with the same ``quick`` flag, no case's
  end-to-end speedup may regress by more than the tolerance.
  Quick-vs-full pairs skip this (the win grows with graph size) and
  rely on the floors.

Exit status 0 = pass, 1 = regression, 2 = unusable input.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: fraction of the baseline a case's speedup may lose before failing
TOLERANCE = 0.25

#: the contended (resync-heavy) case must keep this speedup in any mode
CONTENDED_FLOOR = 2.0

#: the large-repetition-vector case's full-mode acceptance floor
LARGE_REP_FLOOR = 5.0


def _load(path: str) -> dict:
    document = json.loads(Path(path).read_text())
    if (
        document.get("schema") != "repro.bench/1"
        or document.get("name") != "analysis"
    ):
        raise ValueError(f"{path}: not an analysis bench document")
    return document


def check(baseline: dict, current: dict) -> list:
    """Return a list of human-readable failure strings (empty = pass)."""
    failures = []
    cases = current["extra"]["cases"]

    contended = cases.get("resync_heavy", {}).get("speedup", 0.0)
    if contended < CONTENDED_FLOOR:
        failures.append(
            f"resync_heavy (contended) cold-analysis speedup "
            f"{contended:.2f}x fell below the {CONTENDED_FLOOR:.1f}x floor"
        )
    if not current.get("quick"):
        large = cases.get("large_rep", {}).get("speedup", 0.0)
        if large < LARGE_REP_FLOOR:
            failures.append(
                f"large_rep cold-analysis speedup {large:.2f}x fell "
                f"below the {LARGE_REP_FLOOR:.1f}x full-mode floor"
            )

    equivalence = current["extra"].get("equivalence", {})
    seeds = equivalence.get("seeds", 0)
    agreements = equivalence.get("agreements", -1)
    if not seeds or agreements != seeds:
        failures.append(
            f"howard-vs-lawler verdicts disagree: {agreements}/{seeds} "
            f"seeds (must be bit-compatible on every seed)"
        )

    if baseline.get("quick") == current.get("quick"):
        base_cases = baseline["extra"]["cases"]
        for name, base in sorted(base_cases.items()):
            cur = cases.get(name)
            if cur is None:
                failures.append(f"case {name!r} missing from current run")
                continue
            if cur["speedup"] < base["speedup"] * (1.0 - TOLERANCE):
                failures.append(
                    f"{name}: cold-analysis speedup regressed "
                    f"{base['speedup']:.2f}x -> {cur['speedup']:.2f}x "
                    f"(> {TOLERANCE:.0%} loss)"
                )
    else:
        print(
            "note: baseline/current quick flags differ; per-case "
            "comparison skipped (speedup floors still apply)"
        )
    return failures


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        baseline = _load(argv[1])
        current = _load(argv[2])
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}")
        return 2
    failures = check(baseline, current)
    if failures:
        print("analysis benchmark regression:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    cases = current["extra"]["cases"]
    summary = ", ".join(
        f"{name} {case['speedup']:.1f}x" for name, case in sorted(cases.items())
    )
    equivalence = current["extra"]["equivalence"]
    print(
        f"analysis benchmark OK: {summary}; howard==lawler on "
        f"{equivalence['agreements']}/{equivalence['seeds']} seeds"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
