"""Batched heterogeneous execution — batch size x PE count on fig6/fig7.

An accelerator PE amortizes its per-dispatch overhead over B queued
firings: one dispatch of ``dispatch_cycles + sum(ceil(c_k * cpe))``
replaces B dispatches.  This bench sweeps the blocking factor and the
D-unit count on the LPC parallel-error pipeline (paper fig. 6, feed
forward — every blocking factor is admissible), shows the particle
filter (fig. 7, tight feedback) correctly declining to batch, runs the
equal-resource-budget heterogeneous-vs-homogeneous ablation, and times
the vectorized host kernels against their per-element reference loops.

``BENCH_batching.json`` carries the sweep; ``check_batching_regression
.py`` gates CI on the >= 1.5x fig6 batched win, the equal-budget
hetero win, the fig7 clamp, and the vectorized-kernel wall-clock wins.
"""

import time

import numpy as np
import pytest

from conftest import QUICK, emit, save_bench_json, save_result
from repro.analysis import render_table
from repro.apps.lpc import power_spectrum
from repro.apps.lpc.actors import SpectralAnalyzer
from repro.apps.lpc.pipeline import build_parallel_error_graph
from repro.apps.particle_filter import build_particle_filter_graph
from repro.apps.particle_filter.resampling import (
    _multiplicities_loop,
    multiplicities,
)
from repro.mapping.partition import Partition
from repro.platform.pe import PEClass
from repro.spi import SpiConfig, SpiSystem

#: the accelerator class of the sweep: 4x faster per element than a
#: gpp but charging a 100-cycle dispatch, at 1.5x the resource cost —
#: so one gpp + two accelerators exactly matches four gpps (budget 4.0)
ACCELERATOR = PEClass(
    kind="accelerator",
    dispatch_cycles=100,
    cycles_per_element=0.25,
    resource_cost=1.5,
)
EQUAL_BUDGET = 1.0 + 2 * ACCELERATOR.resource_cost  # 1 gpp + 2 accel = 4.0

N_UNITS = (2,) if QUICK else (2, 3)
BATCHES = (1, 2, 4) if QUICK else (1, 2, 4, 8)
ITERATIONS = 8 if QUICK else 16
FRAME_SIZE = 64
ORDER = 8
N_FRAMES = 4


def _speech_frames():
    rng = np.random.default_rng(0)
    return [rng.standard_normal(FRAME_SIZE) for _ in range(N_FRAMES)]


def measure_fig6(n_units: int, batch: int, accelerate: bool) -> dict:
    """One LPC parallel-error run; D units on accelerator PEs when
    ``accelerate``, requested blocking factor ``batch``."""
    system = build_parallel_error_graph(
        _speech_frames(), order=ORDER, n_units=n_units
    )
    classes = (
        {pe: ACCELERATOR for pe in range(1, n_units + 1)}
        if accelerate
        else {}
    )
    partition = Partition(
        system.graph,
        system.partition.n_pes,
        dict(system.partition.assignment),
        pe_classes=classes,
        batch_size=batch,
    )
    compiled = SpiSystem.compile(system.graph, partition, SpiConfig())
    result = compiled.run(iterations=ITERATIONS, metrics=True)
    return {
        "n_units": n_units,
        "requested_batch": batch,
        "effective_batch": compiled.batch,
        "cycles": result.cycles,
        "iteration_period_cycles": result.iteration_period_cycles,
        "batched_firings": result.batched_firings,
        "batch_dispatches": result.batch_dispatches,
        "amortized_dispatch_cycles_saved": (
            result.amortized_dispatch_cycles_saved
        ),
        "data_messages": result.data_messages,
    }


@pytest.fixture(scope="module")
def sweep():
    return {
        (n, b): measure_fig6(n, b, True) for n in N_UNITS for b in BATCHES
    }


@pytest.fixture(scope="module")
def ablation():
    """Equal-resource-budget platforms on the same frame workload:
    heterogeneous (1 gpp + 2 accelerators, batched) vs homogeneous
    (4 gpps, i.e. 3 D units) — both cost ``EQUAL_BUDGET``."""
    hetero = measure_fig6(2, max(BATCHES), True)
    homo = measure_fig6(3, 1, False)
    return {"hetero": hetero, "homo": homo}


@pytest.fixture(scope="module")
def fig7_row(crack_problem):
    """The particle filter's feedback loop admits no blocking factor:
    the runtime must clamp any requested batch back to 1."""
    model, _, observations = crack_problem
    system = build_particle_filter_graph(
        model, observations, n_particles=64, n_pes=2
    )
    partition = Partition(
        system.graph,
        system.partition.n_pes,
        dict(system.partition.assignment),
        pe_classes={1: ACCELERATOR},
        batch_size=max(BATCHES),
    )
    compiled = SpiSystem.compile(system.graph, partition, SpiConfig())
    result = compiled.run(iterations=4, metrics=True)
    return {
        "requested_batch": max(BATCHES),
        "effective_batch": compiled.batch,
        "batch_dispatches": result.batch_dispatches,
        "cycles": result.cycles,
    }


def _best_of(fn, repeats: int = 5) -> float:
    fn()  # warm-up (allocations, code paths)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def kernel_rows():
    """Wall-clock of the vectorized batch kernels vs their per-element
    reference loops (best-of-5 to suppress scheduler noise)."""
    rng = np.random.default_rng(1)
    rows = []

    # PF weight kernel: B observation steps x P particles per batched
    # dispatch.  The batched-firing regime is many *small* firings —
    # the win is amortizing B numpy-call dispatches into one.
    from repro.apps.particle_filter import CrackGrowthModel

    model = CrackGrowthModel()
    b, p = (64, 32) if QUICK else (256, 64)
    observations = 2.0 + 0.1 * rng.standard_normal(b)
    lengths = 2.0 + 0.3 * np.abs(rng.standard_normal((b, p)))
    loop_s = _best_of(
        lambda: [
            model.likelihood(float(observations[i]), lengths[i])
            for i in range(b)
        ]
    )
    vec_s = _best_of(lambda: model.likelihood_batch(observations, lengths))
    rows.append(
        {
            "name": "pf_likelihood",
            "loop_seconds": loop_s,
            "vector_seconds": vec_s,
            "speedup": loop_s / vec_s,
        }
    )

    # PF resampling multiplicities: bincount vs per-index loop.
    population = 5_000 if QUICK else 50_000
    indices = rng.integers(0, population, size=population)
    loop_s = _best_of(lambda: _multiplicities_loop(indices, population))
    vec_s = _best_of(lambda: multiplicities(indices, population))
    rows.append(
        {
            "name": "pf_multiplicities",
            "loop_seconds": loop_s,
            "vector_seconds": vec_s,
            "speedup": loop_s / vec_s,
        }
    )

    # LPC spectral windows: batched FFT vs per-window transforms.
    n_windows = 8 if QUICK else 64
    frames = rng.standard_normal((n_windows, 256))
    loop_s = _best_of(lambda: [power_spectrum(f) for f in frames])
    vec_s = _best_of(lambda: SpectralAnalyzer.analyze_batch(frames))
    rows.append(
        {
            "name": "lpc_spectra",
            "loop_seconds": loop_s,
            "vector_seconds": vec_s,
            "speedup": loop_s / vec_s,
        }
    )
    return rows


def test_batching_report(sweep):
    rows = []
    csv_lines = [
        "n_units,batch,effective_batch,cycles,speedup_vs_batch1,"
        "batched_firings,batch_dispatches,amortized_dispatch_cycles_saved"
    ]
    for n in N_UNITS:
        base = sweep[(n, 1)]["cycles"]
        for b in BATCHES:
            row = sweep[(n, b)]
            speedup = base / row["cycles"]
            rows.append(
                [
                    str(n),
                    str(b),
                    str(row["effective_batch"]),
                    str(row["cycles"]),
                    f"{speedup:.2f}x",
                    str(row["batch_dispatches"]),
                    str(row["amortized_dispatch_cycles_saved"]),
                ]
            )
            csv_lines.append(
                f"{n},{b},{row['effective_batch']},{row['cycles']},"
                f"{speedup:.4f},{row['batched_firings']},"
                f"{row['batch_dispatches']},"
                f"{row['amortized_dispatch_cycles_saved']}"
            )
    text = render_table(
        [
            "D units",
            "batch",
            "effective",
            "cycles",
            "speedup",
            "dispatches",
            "cycles amortized",
        ],
        rows,
    )
    emit("Batched accelerator firing (LPC fig. 6)", text)
    save_result("batching_sweep.txt", text)
    save_result("batching_sweep.csv", "\n".join(csv_lines))


def test_batched_counters_consistent(sweep):
    for (n, b), row in sweep.items():
        assert row["effective_batch"] == b  # fig6 is feed-forward
        if b == 1:
            assert row["batch_dispatches"] == 0
            assert row["amortized_dispatch_cycles_saved"] == 0
        else:
            assert row["batch_dispatches"] > 0
            assert row["amortized_dispatch_cycles_saved"] > 0


def test_batching_preserves_token_traffic(sweep):
    """Batching reorders time, not data: every blocking factor moves
    exactly the same messages."""
    for n in N_UNITS:
        counts = {sweep[(n, b)]["data_messages"] for b in BATCHES}
        assert len(counts) == 1


def test_batch_speedup_floor(sweep):
    """The acceptance criterion: best batched config >= 1.5x the
    unbatched one on fig6 (full mode; quick sweeps fewer factors, so
    the floor relaxes to 1.2x)."""
    floor = 1.2 if QUICK else 1.5
    for n in N_UNITS:
        base = sweep[(n, 1)]["cycles"]
        best = min(sweep[(n, b)]["cycles"] for b in BATCHES)
        assert best < base
        assert base / best >= floor


def test_hetero_beats_homo_equal_budget(ablation):
    assert ablation["hetero"]["cycles"] < ablation["homo"]["cycles"]


def test_fig7_declines_batching(fig7_row):
    assert fig7_row["effective_batch"] == 1
    assert fig7_row["batch_dispatches"] == 0


def test_vectorized_kernels_report(kernel_rows):
    text = render_table(
        ["kernel", "loop s", "vectorized s", "speedup"],
        [
            [
                row["name"],
                f"{row['loop_seconds']:.6f}",
                f"{row['vector_seconds']:.6f}",
                f"{row['speedup']:.1f}x",
            ]
            for row in kernel_rows
        ],
    )
    emit("Vectorized host kernels (best of 5)", text)
    save_result("batching_kernels.txt", text)
    if not QUICK:  # wall-clock asserts are full-mode only (CI noise)
        for row in kernel_rows:
            assert row["speedup"] > 1.0, row["name"]


def test_batching_bench_export(sweep, ablation, fig7_row, kernel_rows):
    """Emit BENCH_batching.json for the CI regression gate."""
    largest = N_UNITS[-1]
    base = sweep[(largest, 1)]
    best = min(
        (sweep[(largest, b)] for b in BATCHES), key=lambda r: r["cycles"]
    )
    wall_start = time.perf_counter()
    rows = [sweep[(n, b)] for n in N_UNITS for b in BATCHES]
    wall = time.perf_counter() - wall_start
    path = save_bench_json(
        "batching",
        makespan_cycles=best["cycles"],
        iteration_period_cycles=best["iteration_period_cycles"],
        wall_seconds=wall,
        extra={
            "accelerator": {
                "dispatch_cycles": ACCELERATOR.dispatch_cycles,
                "cycles_per_element": ACCELERATOR.cycles_per_element,
                "resource_cost": ACCELERATOR.resource_cost,
            },
            "iterations": ITERATIONS,
            "unit_counts": list(N_UNITS),
            "batches": list(BATCHES),
            "rows": rows,
            "fig6_batch1_cycles": base["cycles"],
            "fig6_best_cycles": best["cycles"],
            "fig6_best_batch": best["requested_batch"],
            "fig6_speedup": base["cycles"] / best["cycles"],
            "hetero_vs_homo": {
                "budget": EQUAL_BUDGET,
                "hetero_cycles": ablation["hetero"]["cycles"],
                "hetero_batch": ablation["hetero"]["effective_batch"],
                "hetero_n_units": ablation["hetero"]["n_units"],
                "homo_cycles": ablation["homo"]["cycles"],
                "homo_n_units": ablation["homo"]["n_units"],
            },
            "fig7": fig7_row,
            "kernels": kernel_rows,
        },
    )
    assert path.exists()


def test_batching_benchmark_unit(benchmark):
    """pytest-benchmark unit: one batched heterogeneous fig6 run."""
    benchmark(measure_fig6, N_UNITS[0], max(BATCHES), True)
