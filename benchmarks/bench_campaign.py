"""Campaign throughput: the sharded service vs one process per run.

The workload is the ISSUE's *repeated-graph campaign*: N ``conform.seed``
units cycling through D distinct seeds — the shape every parameter
sweep and soak campaign has (many runs, few distinct graphs).  Two ways
to execute it are measured:

* **serial baseline** — one fresh ``python -m repro.cli conform
  --replay SEED`` process per run, the pre-service workflow: every run
  pays interpreter + import startup and recomputes every compile-time
  analysis from scratch (a sample of runs is measured and the rate
  extrapolated);
* **service campaign** — one ``repro.service`` campaign over the same
  unit list: shard pool (work stealing), run-lifecycle records, and the
  content-addressed analysis cache shared across the repeated graphs.

``BENCH_campaign.json`` records both rates, their ratio, and the cache
hit/miss counters; ``check_campaign_regression.py`` gates CI on the
throughput floor and the >= 0.9 hit rate.
"""

import os
import subprocess
import sys
import time

import pytest

from conftest import QUICK, emit, save_bench_json

#: campaign size / distinct-graph pool (full mode is the ISSUE's
#: 200-seed repeated-graph campaign)
RUNS = 50 if QUICK else 200
DISTINCT = 4 if QUICK else 10
SEED_START = 0
#: cold-miss campaign: every seed distinct, cache off — each run pays
#: the full analysis pipeline, so this measures raw (PR 10) analysis
#: throughput rather than cache amortization
COLD_RUNS = 20 if QUICK else 200
COLD_SEED_START = 10_000
#: one-process-per-run sample size (each costs a full interpreter
#: startup, so the baseline is extrapolated from a sample)
SERIAL_SAMPLE = 4 if QUICK else 8
#: shard pool size.  The default of 1 keeps the gated cache hit-rate
#: measurement deterministic (each shard process holds its own memory
#: cache, so fan-out multiplies the cold misses); the multiprocess path
#: is exercised by tests/service and the conformance-smoke CI job.
WORKERS = max(1, int(os.environ.get("REPRO_CAMPAIGN_WORKERS", "1")))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RUNS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results", "campaign_runs"
)


def _campaign_seeds():
    """The repeated-graph unit list: RUNS units over DISTINCT seeds."""
    return [SEED_START + index % DISTINCT for index in range(RUNS)]


def _serial_one_process_per_run() -> dict:
    """Time a sample of runs the pre-service way: one CLI process each."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    seeds = _campaign_seeds()[:SERIAL_SAMPLE]
    started = time.perf_counter()
    for seed in seeds:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "conform",
            "--replay",
            str(seed),
            "--no-shrink",
        ]
        if QUICK:
            command.append("--quick")
        completed = subprocess.run(
            command,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        assert completed.returncode == 0, completed.stderr.decode()
    wall = time.perf_counter() - started
    return {
        "runs_measured": len(seeds),
        "wall_seconds": wall,
        "runs_per_sec": len(seeds) / wall,
    }


def _service_campaign() -> dict:
    """Run the full unit list through the service campaign engine."""
    from repro.service import CampaignPlan, run_service_campaign

    plan = CampaignPlan(
        operation="conform.seed",
        units=[
            {"seed": seed, "quick": QUICK, "shrink": False}
            for seed in _campaign_seeds()
        ],
        workers=WORKERS,
        runs_dir=RUNS_DIR,
        quick=QUICK,
        name="bench",
    )
    report = run_service_campaign(plan)
    wall = report["bench"]["wall_seconds"]
    failing_cases = sum(
        1
        for result in report["results"]
        if result is not None and not result["payload"]["case"]["ok"]
    )
    return {
        "report": report,
        "wall_seconds": wall,
        "runs_per_sec": len(report["results"]) / wall,
        "failed_units": len(report["failures"]),
        "failing_cases": failing_cases,
    }


def _cold_miss_campaign(legacy: bool) -> dict:
    """Run COLD_RUNS *distinct* seeds with the cache off.

    Every unit is a cold miss, so the runs/sec is set by the analysis
    pipeline itself; ``legacy`` selects the pre-PR-10 engine via
    ``REPRO_ANALYSIS_ENGINE`` (the shard pool is inline at workers=1,
    so the environment reaches the analysis calls).
    """
    from repro.service import CampaignPlan, run_service_campaign

    if legacy:
        os.environ["REPRO_ANALYSIS_ENGINE"] = "legacy"
    try:
        plan = CampaignPlan(
            operation="conform.seed",
            units=[
                {"seed": COLD_SEED_START + index, "quick": QUICK, "shrink": False}
                for index in range(COLD_RUNS)
            ],
            workers=1,
            use_cache=False,
            quick=QUICK,
            name="bench-cold-legacy" if legacy else "bench-cold",
        )
        report = run_service_campaign(plan)
    finally:
        os.environ.pop("REPRO_ANALYSIS_ENGINE", None)
    wall = report["bench"]["wall_seconds"]
    assert not report["failures"]
    return {
        "runs": COLD_RUNS,
        "wall_seconds": wall,
        "runs_per_sec": COLD_RUNS / wall,
    }


@pytest.fixture(scope="module")
def campaign():
    serial = _serial_one_process_per_run()
    service = _service_campaign()
    cold_legacy = _cold_miss_campaign(legacy=True)
    cold_fast = _cold_miss_campaign(legacy=False)
    return {
        "serial": serial,
        "service": service,
        "speedup": service["runs_per_sec"] / serial["runs_per_sec"],
        "cold_miss": {
            "legacy": cold_legacy,
            "fast": cold_fast,
            "speedup": cold_fast["runs_per_sec"]
            / cold_legacy["runs_per_sec"],
        },
    }


def test_campaign_report(campaign):
    cache = campaign["service"]["report"]["cache"]
    emit(
        "Campaign throughput (service vs one process per run)",
        "\n".join(
            [
                f"workload: {RUNS} conform.seed runs over {DISTINCT} "
                f"distinct graphs, {WORKERS} worker(s)",
                f"serial:  {campaign['serial']['runs_per_sec']:.2f} runs/s "
                f"({campaign['serial']['runs_measured']} runs sampled in "
                f"{campaign['serial']['wall_seconds']:.2f} s)",
                f"service: {campaign['service']['runs_per_sec']:.2f} runs/s "
                f"({RUNS} runs in "
                f"{campaign['service']['wall_seconds']:.2f} s)",
                f"speedup: {campaign['speedup']:.2f}x",
                f"cache:   {cache['hits']} hits / {cache['misses']} misses "
                f"(hit rate {cache['hit_rate']:.3f})",
                f"cold-miss (cache off, {COLD_RUNS} distinct seeds): "
                f"legacy {campaign['cold_miss']['legacy']['runs_per_sec']:.2f} "
                f"runs/s -> "
                f"{campaign['cold_miss']['fast']['runs_per_sec']:.2f} runs/s "
                f"({campaign['cold_miss']['speedup']:.2f}x)",
            ]
        ),
    )


def test_campaign_all_units_complete(campaign):
    """Failure isolation aside, a healthy campaign completes everything
    and no conformance seed regresses."""
    assert campaign["service"]["failed_units"] == 0
    assert campaign["service"]["failing_cases"] == 0


def test_campaign_throughput_beats_serial(campaign):
    """Loose in-test floor; the committed-baseline gate in
    check_campaign_regression.py is the strict one (3x full mode)."""
    floor = 1.2 if QUICK else 2.0
    assert campaign["speedup"] >= floor, (
        f"campaign speedup {campaign['speedup']:.2f}x below {floor}x"
    )


def test_campaign_cold_miss_improved(campaign):
    """The cache can't help distinct graphs; the analysis engine must.
    Loose in-test floor — the committed-baseline gate is the strict one."""
    floor = 1.2 if QUICK else 1.5
    assert campaign["cold_miss"]["speedup"] >= floor, (
        f"cold-miss throughput speedup "
        f"{campaign['cold_miss']['speedup']:.2f}x below {floor}x"
    )


def test_campaign_cache_hit_rate(campaign):
    """Repeated-graph workload: all but the first visit of each of the
    DISTINCT graphs must hit the analysis cache."""
    cache = campaign["service"]["report"]["cache"]
    assert cache["hit_rate"] >= 0.9, (
        f"cache hit rate {cache['hit_rate']:.3f} below 0.9"
    )


def test_campaign_lifecycle_records_persisted(campaign):
    """One run record per unit, all terminal, none still queued."""
    from repro.service import RunStore

    records = RunStore(RUNS_DIR).list()
    assert len(records) >= RUNS
    states = {record.state for record in records}
    assert states <= {"done", "failed"}


def test_campaign_bench_export(campaign):
    report = campaign["service"]["report"]
    path = save_bench_json(
        "campaign",
        makespan_cycles=report["bench"]["makespan_cycles"],
        iteration_period_cycles=0.0,
        wall_seconds=campaign["service"]["wall_seconds"],
        extra={
            "runs": RUNS,
            "distinct_graphs": DISTINCT,
            "workers": WORKERS,
            "serial": campaign["serial"],
            "service": {
                "wall_seconds": campaign["service"]["wall_seconds"],
                "runs_per_sec": campaign["service"]["runs_per_sec"],
                "failed_units": campaign["service"]["failed_units"],
                "failing_cases": campaign["service"]["failing_cases"],
            },
            "speedup": campaign["speedup"],
            "cache": report["cache"],
            "cold_miss": campaign["cold_miss"],
        },
    )
    assert path.exists()
